package trace

import (
	"strings"
	"testing"

	"cruz/internal/sim"
)

// step advances virtual time to the next scheduled tick.
func step(e *sim.Engine) { e.Step() }

func TestOpContextPropagation(t *testing.T) {
	_, tr := newTestTracer(64)

	op1 := tr.BeginOp("svc", "core", "checkpoint")
	op2 := tr.BeginOp("svc", "core", "recovery")
	c1, c2 := op1.Context(), op2.Context()
	if c1.Op == 0 || c2.Op == 0 || c1.Op == c2.Op {
		t.Fatalf("op ids not distinct/nonzero: %v %v", c1, c2)
	}
	if c1.Zero() || (SpanContext{}.Zero()) != true {
		t.Fatal("Zero() misreports")
	}

	// A child — possibly on another node — adopts the op and parents
	// under the originating span.
	child := tr.BeginChild(c1, "node0", "core", "agent.checkpoint")
	cc := child.Context()
	if cc.Op != c1.Op {
		t.Fatalf("child op = %d, want %d", cc.Op, c1.Op)
	}
	grand := tr.BeginChild(cc, "node0", "phase", "quiesce")
	grand.End()
	child.End()
	op2.End()
	op1.End()

	// The emitted events carry the linkage.
	var beginChild, endChild, beginGrand *Event
	evs := tr.Events()
	for i := range evs {
		ev := &evs[i]
		switch {
		case ev.Kind == KindBegin && ev.Name == "agent.checkpoint":
			beginChild = ev
		case ev.Kind == KindEnd && ev.Span == child.Context().Span:
			endChild = ev
		case ev.Kind == KindBegin && ev.Name == "quiesce":
			beginGrand = ev
		}
	}
	if beginChild == nil || beginChild.Op != c1.Op || beginChild.Parent != c1.Span {
		t.Fatalf("child begin linkage wrong: %+v", beginChild)
	}
	if endChild == nil || endChild.Op != c1.Op {
		t.Fatalf("child end lost op: %+v", endChild)
	}
	if beginGrand == nil || beginGrand.Parent != cc.Span || beginGrand.Op != c1.Op {
		t.Fatalf("grandchild linkage wrong: %+v", beginGrand)
	}
}

func TestSpanContextValidAfterEnd(t *testing.T) {
	_, tr := newTestTracer(64)
	op := tr.BeginOp("svc", "core", "checkpoint")
	ctx := op.Context()
	op.End()
	if got := op.Context(); got != ctx {
		t.Fatalf("context after End = %v, want %v", got, ctx)
	}
	// Replies sent after a span ends still land in its tree.
	tr.InstantCtx(op.Context(), "svc", "core", "commit")
	evs := tr.Events()
	last := evs[len(evs)-1]
	if last.Op != ctx.Op || last.Parent != ctx.Span {
		t.Fatalf("post-end instant linkage wrong: %+v", last)
	}
}

func TestOpenSpanNames(t *testing.T) {
	_, tr := newTestTracer(64)
	a := tr.Begin("node0", "core", "leaky")
	b := tr.Begin("node1", "phase", "hung")
	done := tr.Begin("node0", "core", "fine")
	done.End()
	names := tr.OpenSpanNames()
	if len(names) != 2 {
		t.Fatalf("open = %v, want 2 entries", names)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "leaky") || !strings.Contains(joined, "hung") {
		t.Fatalf("names = %v", names)
	}
	a.End()
	b.End()
	if n := tr.OpenSpanNames(); n != nil {
		t.Fatalf("expected none open, got %v", n)
	}
}

func TestFlightOnlyMode(t *testing.T) {
	e := sim.NewEngine(1)
	tr := New(e, Config{FlightOnly: true, SampleEvery: -1})
	for i := 0; i < 10; i++ {
		tr.Instant("node0", "core", "tick")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("flight-only tracer leaked a main ring: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	d := tr.DumpFlight("op.fail", "checkpoint/j")
	if d == nil || len(d.Events) != 10 {
		t.Fatalf("dump = %+v, want 10 events", d)
	}
	if d.Trigger != "op.fail" || d.Reason != "checkpoint/j" {
		t.Fatalf("dump labels wrong: %+v", d)
	}
}

func TestFlightWindowAndOrder(t *testing.T) {
	e := sim.NewEngine(1)
	tr := New(e, Config{Capacity: 64, SampleEvery: -1,
		Flight: FlightConfig{Window: 100 * sim.Millisecond}})
	// Interleave emissions from two nodes across virtual time.
	for i := 0; i < 6; i++ {
		e.Schedule(50*sim.Millisecond, func() {})
		tr.Instant("node0", "core", "a")
		tr.Instant("node1", "core", "b")
		step(e)
	}
	// now = 300ms; window reaches back to 200ms: emissions at 200, 250,
	// 300 ms qualify — wait: events emitted before each step land at the
	// pre-step timestamp, so 0,50,...,250 ms; cutoff 200 keeps 200,250.
	d := tr.DumpFlight("test", "window")
	for _, ev := range d.Events {
		if ev.At < d.At.Add(-d.Window) {
			t.Fatalf("event at %v outside window (dump at %v)", ev.At, d.At)
		}
	}
	if len(d.Events) != 4 {
		t.Fatalf("window kept %d events, want 4", len(d.Events))
	}
	// Merged across nodes in emission order: a,b,a,b.
	for i, ev := range d.Events {
		want := "a"
		if i%2 == 1 {
			want = "b"
		}
		if ev.Name != want {
			t.Fatalf("event %d = %s, want %s (order not global)", i, ev.Name, want)
		}
	}
	if got := d.Format(); !strings.Contains(got, "trigger=test") {
		t.Fatalf("dump format lacks trigger:\n%s", got)
	}
}

func TestFlightPerNodeBound(t *testing.T) {
	e := sim.NewEngine(1)
	tr := New(e, Config{Capacity: 1024, SampleEvery: -1,
		Flight: FlightConfig{PerNode: 4, Window: sim.Duration(1) * sim.Second}})
	for i := 0; i < 20; i++ {
		tr.Counter("node0", "core", "tick", float64(i))
	}
	d := tr.DumpFlight("test", "bound")
	if len(d.Events) != 4 {
		t.Fatalf("per-node ring kept %d, want 4", len(d.Events))
	}
	if d.Events[0].Value != 16 || d.Events[3].Value != 19 {
		t.Fatalf("ring kept wrong tail: first=%v last=%v", d.Events[0].Value, d.Events[3].Value)
	}
}

func TestFlightDumpCap(t *testing.T) {
	e := sim.NewEngine(1)
	tr := New(e, Config{Capacity: 64, SampleEvery: -1, Flight: FlightConfig{MaxDumps: 2}})
	tr.Instant("node0", "core", "x")
	for i := 0; i < 5; i++ {
		tr.DumpFlight("test", "n")
	}
	if got := len(tr.FlightDumps()); got != 2 {
		t.Fatalf("dumps kept = %d, want 2", got)
	}
	if got := tr.FlightDumpsDropped(); got != 3 {
		t.Fatalf("dumps dropped = %d, want 3", got)
	}
}

func TestFlightDumpEmitsTriggerInstant(t *testing.T) {
	_, tr := newTestTracer(64)
	tr.Instant("node0", "core", "x")
	d := tr.DumpFlight("lease.expiry", "node node1")
	// The trigger instant lands in the main trace but not in the dump
	// (the dump is strictly pre-trigger).
	for _, ev := range d.Events {
		if ev.Cat == "flight" {
			t.Fatalf("dump contains its own trigger: %+v", ev)
		}
	}
	evs := tr.Events()
	last := evs[len(evs)-1]
	if last.Cat != "flight" || last.Name != "dump" {
		t.Fatalf("main trace lacks trigger instant: %+v", last)
	}
}
