package trace

import (
	"fmt"
	"sort"
	"strings"

	"cruz/internal/sim"
)

// PhaseCat is the category agents use for checkpoint-phase spans; the
// PhaseBreakdown report aggregates exactly these.
const PhaseCat = "phase"

// Canonical checkpoint phase order (the 2PC lifecycle): quiesce the pod,
// drain/settle in-flight communication, capture state, hash and dedup
// the captured pages (content-addressed saves only), write the unique
// bytes, then the commit round-trip back to running; compact is the
// store's off-critical-path chain fold. Unknown phases sort after
// these, alphabetically.
var phaseOrder = map[string]int{
	"quiesce": 0,
	"drain":   1,
	"capture": 2,
	"hash":    3,
	"dedup":   4,
	"write":   5,
	"commit":  6,
	"compact": 7,
	"load":    8,
	"restore": 9,
}

// PhaseStat aggregates one named phase across all nodes and checkpoints
// in a trace.
type PhaseStat struct {
	Phase   string
	Count   int
	MeanMs  float64
	MinMs   float64
	MaxMs   float64
	TotalMs float64
}

// PhaseReport is the per-phase decomposition of checkpoint latency — the
// table the paper's Fig. 5 discussion implies ("dominated by the time to
// write this state to disk") but never prints.
type PhaseReport struct {
	Rows []PhaseStat
	// OpCount and OpMeanMs summarize end-to-end agent checkpoint spans
	// (cat "core" or "flush", name "agent.checkpoint"), when present.
	OpCount  int
	OpMeanMs float64
}

// PhaseBreakdown pairs Begin/End phase spans in a trace and aggregates
// them by phase name. Unmatched Begins (phases still open when the trace
// was cut) are ignored.
func PhaseBreakdown(events []Event) *PhaseReport {
	begins := make(map[SpanID]sim.Time)
	acc := make(map[string][]float64)
	var opTotal float64
	var opCount int
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindBegin:
			begins[ev.Span] = ev.At
		case KindEnd:
			at, ok := begins[ev.Span]
			if !ok {
				continue
			}
			delete(begins, ev.Span)
			ms := ev.At.Sub(at).Milliseconds()
			if ev.Cat == PhaseCat {
				acc[ev.Name] = append(acc[ev.Name], ms)
			} else if ev.Name == "agent.checkpoint" {
				opTotal += ms
				opCount++
			}
		}
	}
	rep := &PhaseReport{OpCount: opCount}
	if opCount > 0 {
		rep.OpMeanMs = opTotal / float64(opCount)
	}
	names := make([]string, 0, len(acc))
	for name := range acc {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := phaseOrder[names[i]]
		oj, jok := phaseOrder[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	for _, name := range names {
		samples := acc[name]
		st := PhaseStat{Phase: name, Count: len(samples), MinMs: samples[0], MaxMs: samples[0]}
		for _, ms := range samples {
			st.TotalMs += ms
			if ms < st.MinMs {
				st.MinMs = ms
			}
			if ms > st.MaxMs {
				st.MaxMs = ms
			}
		}
		st.MeanMs = st.TotalMs / float64(st.Count)
		rep.Rows = append(rep.Rows, st)
	}
	return rep
}

// Format renders the report as an aligned text table.
func (r *PhaseReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %10s %10s %10s\n", "phase", "count", "mean ms", "min ms", "max ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %6d %10.3f %10.3f %10.3f\n",
			row.Phase, row.Count, row.MeanMs, row.MinMs, row.MaxMs)
	}
	if r.OpCount > 0 {
		fmt.Fprintf(&b, "%-10s %6d %10.3f\n", "end-to-end", r.OpCount, r.OpMeanMs)
	}
	return b.String()
}
