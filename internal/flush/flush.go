// Package flush implements the channel-flushing coordinated checkpoint
// that MPVM, CoCheck, and LAM-MPI use (paper §2, §5.2) — the baseline
// Cruz improves on.
//
// Instead of saving TCP state and dropping in-flight packets, flushing
// protocols make the state of every communication channel empty before
// checkpointing: each node stops its application, then exchanges marker
// messages with EVERY other node carrying per-channel byte-stream
// positions, and drains its sockets (into a library-level buffer that
// becomes part of the checkpoint) until each channel has delivered
// everything sent before the peer's marker. Only then does the local
// state save begin.
//
// The cost Cruz eliminates is visible directly in this package: O(N²)
// marker messages per checkpoint versus Cruz's O(N), plus the drain
// latency on every node. The local save itself reuses internal/ckpt.
package flush

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"cruz/internal/ckpt"
	"cruz/internal/ctl"
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
	"cruz/internal/zap"
)

// DefaultControlPort is the flushing agents' control port (distinct from
// the Cruz agents' port so both can coexist on a node for comparison
// benchmarks).
const DefaultControlPort = 7078

// Errors surfaced by the flushing protocol.
var (
	ErrUnknownPod = errors.New("flush: agent does not manage that pod")
	ErrBusy       = errors.New("flush: operation already in progress")
	ErrAgent      = errors.New("flush: agent reported failure")
)

// fMsgType discriminates protocol messages.
type fMsgType int

const (
	fCheckpoint fMsgType = iota + 1
	fMarker
	fDone
	fContinue
	fContinueDone
)

// memberInfo travels in the checkpoint request so agents can find each
// other for the all-to-all marker exchange.
type memberInfo struct {
	Pod   string
	PodIP tcpip.Addr
	Agent tcpip.AddrPort
}

// connPos is one channel marker entry: the sender's byte-stream position
// on the channel identified (from the receiver's point of view) by Tuple.
type connPos struct {
	Tuple tcpip.FourTuple
	Sent  uint64
}

// fWireMsg is the single message shape.
type fWireMsg struct {
	Type    fMsgType
	Seq     int
	Pod     string // destination pod (checkpoint/continue) or sender pod (marker)
	Err     string
	Members []memberInfo

	// Marker payload.
	FromPod   string
	Positions []connPos

	// Reporting.
	LocalDuration sim.Duration
	FlushDuration sim.Duration
	MarkerMsgs    int
	ImageBytes    int64
}

type fConn struct {
	*ctl.Conn
	onMsg func(*fConn, *fWireMsg)
}

func newFConn(tc *tcpip.TCPConn, onMsg func(*fConn, *fWireMsg)) *fConn {
	c := &fConn{onMsg: onMsg}
	c.Conn = ctl.NewConn(tc, c.frame, nil)
	return c
}

func (c *fConn) send(m *fWireMsg) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		return fmt.Errorf("flush: encode: %w", err)
	}
	return c.Conn.Send(body.Bytes())
}

func (c *fConn) frame(_ *ctl.Conn, payload []byte) {
	var m fWireMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return
	}
	c.onMsg(c, &m)
}

// AgentParams models the flushing agent's costs.
type AgentParams struct {
	Port        uint16
	MsgCost     sim.Duration
	CaptureCost sim.Duration
	// DrainPoll is how often the agent re-checks channel drain progress.
	DrainPoll sim.Duration
}

// DefaultAgentParams returns testbed-calibrated costs (message handling
// matches the Cruz agents so the comparison isolates protocol structure).
func DefaultAgentParams() AgentParams {
	return AgentParams{
		Port:        DefaultControlPort,
		MsgCost:     20 * sim.Microsecond,
		CaptureCost: 150 * sim.Microsecond,
		DrainPoll:   200 * sim.Microsecond,
	}
}

// Agent is the per-node daemon of the flushing baseline.
type Agent struct {
	kern   *kernel.Kernel
	store  *ckpt.Store
	params AgentParams
	cpu    ctl.Serializer
	tr     *trace.Tracer

	pods     map[string]*zap.Pod
	listener *tcpip.TCPListener
	peers    map[tcpip.AddrPort]*fConn

	op *agentOp
	// earlyMarkers buffers markers that arrive before our own
	// checkpoint request (a faster peer stopped first).
	earlyMarkers map[int][]*fWireMsg
}

type agentOp struct {
	seq        int
	pod        *zap.Pod
	podName    string
	conn       *fConn
	members    []memberInfo
	t0         sim.Time
	flushEnd   sim.Time
	markers    map[string]*fWireMsg // sender pod -> marker
	need       int
	markerSent int
	saved      bool

	span      trace.Span // agent.checkpoint (cat "flush")
	phQuiesce trace.Span
	phDrain   trace.Span
	phCommit  trace.Span
}

// NewAgent starts a flushing agent on the node.
func NewAgent(kern *kernel.Kernel, store *ckpt.Store, params AgentParams) (*Agent, error) {
	a := &Agent{
		kern:         kern,
		store:        store,
		params:       params,
		cpu:          ctl.Serializer{Engine: kern.Engine()},
		tr:           trace.FromEngine(kern.Engine()),
		pods:         make(map[string]*zap.Pod),
		peers:        make(map[tcpip.AddrPort]*fConn),
		earlyMarkers: make(map[int][]*fWireMsg),
	}
	addr, ok := kern.Stack().FirstAddr()
	if !ok {
		return nil, tcpip.ErrNoRoute
	}
	l, err := kern.Stack().ListenTCP(tcpip.AddrPort{Addr: addr, Port: params.Port}, 16)
	if err != nil {
		return nil, err
	}
	a.listener = l
	l.SetNotify(func() {
		for {
			tc, aerr := l.Accept()
			if aerr != nil {
				return
			}
			newFConn(tc, a.onMsg)
		}
	})
	return a, nil
}

// Addr returns the agent's control endpoint.
func (a *Agent) Addr() tcpip.AddrPort { return a.listener.LocalAddr() }

// Manage registers a pod.
func (a *Agent) Manage(pod *zap.Pod) { a.pods[pod.Name()] = pod }

// Pod returns a managed pod by name.
func (a *Agent) Pod(name string) *zap.Pod { return a.pods[name] }

// peerConn returns (dialing if needed) a connection to a peer agent.
func (a *Agent) peerConn(addr tcpip.AddrPort) (*fConn, error) {
	if c, ok := a.peers[addr]; ok {
		return c, nil
	}
	tc, err := a.kern.Stack().DialTCP(tcpip.AddrPort{}, addr)
	if err != nil {
		return nil, err
	}
	c := newFConn(tc, a.onMsg)
	a.peers[addr] = c
	return c, nil
}

// onMsg dispatches any protocol message (from the coordinator or a peer
// agent).
func (a *Agent) onMsg(c *fConn, m *fWireMsg) {
	a.cpu.Do(a.params.MsgCost, func() {
		switch m.Type {
		case fCheckpoint:
			a.startCheckpoint(c, m)
		case fMarker:
			a.handleMarker(m)
		case fContinue:
			a.handleContinue(m)
		}
	})
}

// startCheckpoint is the flushing agent's local sequence: stop the
// application, exchange markers all-to-all, drain channels, then save.
func (a *Agent) startCheckpoint(c *fConn, m *fWireMsg) {
	pod, ok := a.pods[m.Pod]
	if !ok || pod.Destroyed() {
		// Error replies ride the coordinator's own conn: if that conn is
		// dead the coordinator already lost this agent, and no op was
		// created here to clean up.
		c.send(&fWireMsg{Type: fDone, Seq: m.Seq, Pod: m.Pod, Err: ErrUnknownPod.Error()}) //cruzvet:allow errdrop reply on the coordinator's conn; nothing to recover agent-side
		return
	}
	if a.op != nil {
		c.send(&fWireMsg{Type: fDone, Seq: m.Seq, Pod: m.Pod, Err: ErrBusy.Error()}) //cruzvet:allow errdrop reply on the coordinator's conn; nothing to recover agent-side
		return
	}
	op := &agentOp{
		seq:     m.Seq,
		pod:     pod,
		podName: m.Pod,
		conn:    c,
		members: m.Members,
		t0:      a.kern.Engine().Now(),
		markers: make(map[string]*fWireMsg),
		need:    len(m.Members) - 1,
	}
	a.op = op
	if a.tr.Enabled() {
		node := a.kern.Name()
		op.span = a.tr.Begin(node, "flush", "agent.checkpoint",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
		op.phQuiesce = a.tr.Begin(node, trace.PhaseCat, "quiesce", trace.Str("pod", m.Pod))
	}
	// Adopt any markers that raced ahead of the request.
	for _, em := range a.earlyMarkers[m.Seq] {
		op.markers[em.FromPod] = em
	}
	delete(a.earlyMarkers, m.Seq)

	pod.Stop(func() {
		op.phQuiesce.End()
		if a.tr.Enabled() {
			op.phDrain = a.tr.Begin(a.kern.Name(), trace.PhaseCat, "drain",
				trace.Str("pod", op.podName), trace.Str("mode", "flush"))
		}
		// Application stopped: emit this node's markers to every other
		// node (the all-to-all exchange; O(N²) cluster-wide).
		for _, mem := range op.members {
			if mem.Pod == op.podName {
				continue
			}
			positions := a.positionsToward(pod, mem.PodIP)
			pc, err := a.peerConn(mem.Agent)
			if err != nil {
				continue
			}
			// A failed marker send is the same situation as a missing peer
			// conn above: the peer stalls in drain and the coordinator's
			// job-level failure handling takes over.
			if err := pc.send(&fWireMsg{
				Type:      fMarker,
				Seq:       op.seq,
				Pod:       mem.Pod,
				FromPod:   op.podName,
				Positions: positions,
			}); err != nil {
				continue
			}
			op.markerSent++
			if a.tr.Enabled() {
				a.tr.Instant(a.kern.Name(), "flush", "marker.send",
					trace.Str("to", mem.Pod), trace.Int("channels", int64(len(positions))))
			}
		}
		a.pollDrain(op)
	})
}

// positionsToward collects the pod's send positions on channels whose
// peer is the given pod address.
func (a *Agent) positionsToward(pod *zap.Pod, peerIP tcpip.Addr) []connPos {
	var out []connPos
	for _, conn := range a.kern.Stack().Conns() {
		t := conn.Tuple()
		if t.Local.Addr != pod.IP() || t.Remote.Addr != peerIP {
			continue
		}
		sent, _ := conn.StreamProgress()
		// The receiver identifies the channel by its own tuple.
		out = append(out, connPos{
			Tuple: tcpip.FourTuple{Local: t.Remote, Remote: t.Local},
			Sent:  sent,
		})
	}
	return out
}

// handleMarker records a peer's marker (possibly before our own request).
func (a *Agent) handleMarker(m *fWireMsg) {
	if a.tr.Enabled() {
		a.tr.Instant(a.kern.Name(), "flush", "marker.recv", trace.Str("from", m.FromPod))
	}
	if a.op != nil && a.op.seq == m.Seq {
		a.op.markers[m.FromPod] = m
		return
	}
	a.earlyMarkers[m.Seq] = append(a.earlyMarkers[m.Seq], m)
}

// pollDrain re-checks flush progress until every channel has delivered
// everything its sender emitted before stopping, then saves local state.
func (a *Agent) pollDrain(op *agentOp) {
	if a.op != op {
		return
	}
	if len(op.markers) >= op.need && a.drained(op) {
		op.flushEnd = a.kern.Engine().Now()
		op.phDrain.End(trace.Int("markers", int64(len(op.markers))))
		a.saveLocal(op)
		return
	}
	// Drain live socket data into library buffers so windows reopen and
	// remaining in-flight bytes can arrive.
	for _, conn := range a.kern.Stack().Conns() {
		if conn.Tuple().Local.Addr == op.pod.IP() {
			conn.DrainToAlt()
		}
	}
	a.kern.Engine().Schedule(a.params.DrainPoll, func() { a.pollDrain(op) })
}

// drained reports whether all marker positions have been received.
func (a *Agent) drained(op *agentOp) bool {
	conns := a.kern.Stack().Conns()
	for _, m := range op.markers {
		for _, pos := range m.Positions {
			satisfied := false
			for _, conn := range conns {
				if conn.Tuple() == pos.Tuple {
					_, rcvd := conn.StreamProgress()
					if rcvd >= pos.Sent {
						satisfied = true
					}
					break
				}
			}
			if !satisfied {
				return false
			}
		}
	}
	return true
}

// saveLocal captures and writes the pod image, then reports done.
func (a *Agent) saveLocal(op *agentOp) {
	var phCapture trace.Span
	if a.tr.Enabled() {
		phCapture = a.tr.Begin(a.kern.Name(), trace.PhaseCat, "capture",
			trace.Str("pod", op.podName))
	}
	a.cpu.Do(a.params.CaptureCost, func() {
		img, err := ckpt.Capture(op.pod, op.seq, ckpt.Options{})
		if err != nil {
			phCapture.End(trace.Str("err", err.Error()))
			op.span.End(trace.Str("err", err.Error()))
			//cruzvet:allow errdrop failure reply on the coordinator's conn; local op state clears either way
			op.conn.send(&fWireMsg{Type: fDone, Seq: op.seq, Pod: op.podName, Err: err.Error()})
			a.op = nil
			return
		}
		phCapture.End(trace.Int("mem_bytes", img.MemoryBytes()))
		var phWrite trace.Span
		if a.tr.Enabled() {
			phWrite = a.tr.Begin(a.kern.Name(), trace.PhaseCat, "write",
				trace.Str("pod", op.podName))
		}
		a.store.Save(img, func(size int64, serr error) {
			phWrite.End(trace.Int("bytes", size))
			if a.tr.Enabled() && serr == nil {
				op.phCommit = a.tr.Begin(a.kern.Name(), trace.PhaseCat, "commit",
					trace.Str("pod", op.podName))
			}
			msg := &fWireMsg{
				Type:          fDone,
				Seq:           op.seq,
				Pod:           op.podName,
				LocalDuration: a.kern.Engine().Now().Sub(op.t0),
				FlushDuration: op.flushEnd.Sub(op.t0),
				MarkerMsgs:    op.markerSent,
				ImageBytes:    size,
			}
			if serr != nil {
				msg.Err = serr.Error()
				op.span.End(trace.Str("err", serr.Error()))
			}
			op.saved = true
			op.conn.send(msg) //cruzvet:allow errdrop fDone reply on the coordinator's conn; the agent op is complete regardless
		})
	})
}

// handleContinue resumes the application.
func (a *Agent) handleContinue(m *fWireMsg) {
	op := a.op
	if op == nil || op.seq != m.Seq {
		return
	}
	a.op = nil
	op.pod.Resume()
	op.phCommit.End()
	op.span.End()
	//cruzvet:allow errdrop fContinueDone reply on the coordinator's conn; the pod resumed and the op cleared
	op.conn.send(&fWireMsg{
		Type:          fContinueDone,
		Seq:           m.Seq,
		Pod:           op.podName,
		LocalDuration: a.params.MsgCost,
	})
}

// Member describes one job member for the flushing coordinator.
type Member struct {
	Pod   string
	PodIP tcpip.Addr
	Agent tcpip.AddrPort
}

// Job is a distributed application under the flushing protocol.
type Job struct {
	Name    string
	Members []Member
}

// Result reports a flushing checkpoint's costs.
type Result struct {
	Seq int
	// Latency is first request to last done (comparable to Cruz's
	// Fig. 5(a) metric).
	Latency      sim.Duration
	CycleLatency sim.Duration
	// MaxFlush is the slowest node's marker-exchange-plus-drain phase —
	// the cost Cruz eliminates entirely.
	MaxFlush sim.Duration
	MaxLocal sim.Duration
	// CoordinatorMessages counts coordinator<->agent messages; MarkerMessages
	// counts agent<->agent marker traffic (the O(N²) term).
	CoordinatorMessages int
	MarkerMessages      int
}

// Coordinator drives flushing checkpoints.
type Coordinator struct {
	stack  *tcpip.Stack
	params AgentParams // MsgCost reused
	cpu    ctl.Serializer
	tr     *trace.Tracer
	conns  map[tcpip.AddrPort]*fConn
	ops    map[string]*coordOp
	seq    map[string]int
}

type coordOp struct {
	job      *Job
	seq      int
	t0       sim.Time
	doneAt   sim.Time
	pending  map[string]bool
	contPend map[string]bool
	res      *Result
	done     func(*Result, error)
	failed   bool
	span     trace.Span
}

// NewCoordinator creates a flushing coordinator on the given stack.
func NewCoordinator(stack *tcpip.Stack) *Coordinator {
	return &Coordinator{
		stack:  stack,
		params: DefaultAgentParams(),
		cpu:    ctl.Serializer{Engine: stack.Engine()},
		tr:     trace.FromEngine(stack.Engine()),
		conns:  make(map[tcpip.AddrPort]*fConn),
		ops:    make(map[string]*coordOp),
		seq:    make(map[string]int),
	}
}

// Connect dials all agents of the job.
func (c *Coordinator) Connect(job *Job, done func(error)) {
	remaining := 0
	check := func() {
		if remaining == 0 && done != nil {
			done(nil)
			done = nil
		}
	}
	for _, m := range job.Members {
		addr := m.Agent
		if _, ok := c.conns[addr]; ok {
			continue
		}
		tc, err := c.stack.DialTCP(tcpip.AddrPort{}, addr)
		if err != nil {
			done(err)
			return
		}
		remaining++
		fc := newFConn(tc, c.onMsg)
		c.conns[addr] = fc
		established := false
		tc.SetNotify(func() {
			fc.Pump()
			if !established && tc.Established() {
				established = true
				remaining--
				check()
			}
		})
	}
	check()
}

// Checkpoint runs one flushing coordinated checkpoint.
func (c *Coordinator) Checkpoint(job *Job, done func(*Result, error)) {
	if _, busy := c.ops[job.Name]; busy {
		done(nil, ErrBusy)
		return
	}
	c.seq[job.Name]++
	seq := c.seq[job.Name]
	members := make([]memberInfo, len(job.Members))
	for i, m := range job.Members {
		members[i] = memberInfo{Pod: m.Pod, PodIP: m.PodIP, Agent: m.Agent}
	}
	op := &coordOp{
		job:      job,
		seq:      seq,
		t0:       c.stack.Engine().Now(),
		pending:  make(map[string]bool),
		contPend: make(map[string]bool),
		res:      &Result{Seq: seq},
		done:     done,
	}
	if c.tr.Enabled() {
		op.span = c.tr.Begin(c.stack.Name(), "flush", "checkpoint",
			trace.Str("job", job.Name), trace.Int("seq", int64(seq)),
			trace.Int("members", int64(len(job.Members))))
	}
	c.ops[job.Name] = op
	for _, m := range job.Members {
		op.pending[m.Pod] = true
		op.contPend[m.Pod] = true
		m := m
		c.cpu.Do(c.params.MsgCost, func() {
			fc, ok := c.conns[m.Agent]
			if !ok {
				c.fail(op, fmt.Errorf("%w: no connection to %s", ErrAgent, m.Agent))
				return
			}
			op.res.CoordinatorMessages += 1
			if err := fc.send(&fWireMsg{Type: fCheckpoint, Seq: seq, Pod: m.Pod, Members: members}); err != nil {
				c.fail(op, fmt.Errorf("%w: send to %s: %v", ErrAgent, m.Agent, err))
			}
		})
	}
}

func (c *Coordinator) fail(op *coordOp, err error) {
	if op.failed {
		return
	}
	op.failed = true
	op.span.End(trace.Str("err", err.Error()))
	delete(c.ops, op.job.Name)
	op.done(nil, err)
}

// onMsg handles agent replies.
func (c *Coordinator) onMsg(_ *fConn, m *fWireMsg) {
	c.cpu.Do(c.params.MsgCost, func() {
		var op *coordOp
		for _, o := range c.ops {
			if o.seq == m.Seq {
				op = o
				break
			}
		}
		if op == nil || op.failed {
			return
		}
		if m.Err != "" {
			c.fail(op, fmt.Errorf("%w: %s: %s", ErrAgent, m.Pod, m.Err))
			return
		}
		switch m.Type {
		case fDone:
			if !op.pending[m.Pod] {
				return
			}
			delete(op.pending, m.Pod)
			op.res.CoordinatorMessages++
			op.res.MarkerMessages += m.MarkerMsgs
			if m.FlushDuration > op.res.MaxFlush {
				op.res.MaxFlush = m.FlushDuration
			}
			if m.LocalDuration > op.res.MaxLocal {
				op.res.MaxLocal = m.LocalDuration
			}
			if len(op.pending) == 0 {
				op.doneAt = c.stack.Engine().Now()
				op.res.Latency = op.doneAt.Sub(op.t0)
				for _, mem := range op.job.Members {
					mem := mem
					c.cpu.Do(c.params.MsgCost, func() {
						if fc, ok := c.conns[mem.Agent]; ok {
							op.res.CoordinatorMessages++
							if err := fc.send(&fWireMsg{Type: fContinue, Seq: op.seq, Pod: mem.Pod}); err != nil {
								c.fail(op, fmt.Errorf("%w: continue to %s: %v", ErrAgent, mem.Agent, err))
							}
						}
					})
				}
			}
		case fContinueDone:
			if !op.contPend[m.Pod] {
				return
			}
			delete(op.contPend, m.Pod)
			op.res.CoordinatorMessages++
			if len(op.contPend) == 0 && len(op.pending) == 0 {
				op.res.CycleLatency = c.stack.Engine().Now().Sub(op.t0)
				op.span.End(trace.Int("marker_msgs", int64(op.res.MarkerMessages)))
				delete(c.ops, op.job.Name)
				op.done(op.res, nil)
			}
		}
	})
}
