package flush

import (
	"errors"
	"testing"

	"cruz/internal/ckpt"
	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/zap"
)

func init() {
	ckpt.RegisterProgram(&chatterProg{})
}

// chatterProg sends a numbered byte stream to its right neighbour and
// verifies its left neighbour's stream, like the core tests' ring worker
// but with bulkier messages so channels actually hold in-flight data.
type chatterProg struct {
	ID, N  int
	PeerIP tcpip.Addr
	Phase  int
	LFD    int
	InFD   int
	OutFD  int
	SentB  uint64
	RecvB  uint64
	Fault  string
}

func (w *chatterProg) fail(msg string) kernel.StepResult {
	w.Fault = msg
	return kernel.Exit(0, 2)
}

func (w *chatterProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	const chunk = 1000
	switch w.Phase {
	case 0:
		fd, err := ctx.Listen(tcpip.AddrPort{Port: 9100}, 4)
		if err != nil {
			return w.fail("listen")
		}
		w.LFD = fd
		w.Phase = 1
		return kernel.Sleep(0, 10*sim.Millisecond)
	case 1:
		fd, err := ctx.Connect(tcpip.AddrPort{Addr: w.PeerIP, Port: 9100})
		if err != nil {
			return w.fail("connect")
		}
		w.OutFD = fd
		w.Phase = 2
		return kernel.Continue(0)
	case 2:
		ok, err := ctx.ConnEstablished(w.OutFD)
		if err != nil {
			return w.fail("establish")
		}
		if !ok {
			return kernel.Sleep(0, sim.Millisecond)
		}
		w.Phase = 3
		return kernel.Continue(0)
	case 3:
		fd, err := ctx.Accept(w.LFD)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, w.LFD)
		}
		if err != nil {
			return w.fail("accept")
		}
		w.InFD = fd
		w.Phase = 4
		return kernel.Continue(0)
	default:
		// Alternate sending a chunk and draining whatever arrived,
		// verifying the numbered stream.
		b := make([]byte, chunk)
		for i := range b {
			b[i] = byte(w.SentB + uint64(i))
		}
		if n, err := ctx.Send(w.OutFD, b); err == nil {
			w.SentB += uint64(n)
		}
		rb := make([]byte, 4096)
		n, err := ctx.Recv(w.InFD, rb, false)
		if err == nil {
			for i := 0; i < n; i++ {
				if rb[i] != byte(w.RecvB+uint64(i)) {
					return w.fail("stream corruption")
				}
			}
			w.RecvB += uint64(n)
		}
		return kernel.Continue(200 * sim.Microsecond)
	}
}

type rig struct {
	t      *testing.T
	engine *sim.Engine
	coord  *Coordinator
	job    *Job
	progs  []*chatterProg
	pods   []*zap.Pod
}

func podIP(i int) tcpip.Addr { return tcpip.Addr{10, 0, 1, byte(i + 1)} }

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{t: t, engine: sim.NewEngine(41)}
	sw := ether.NewSwitch(r.engine)
	mkNode := func(i int) *kernel.Kernel {
		mac := ether.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		nic := ether.NewNIC(r.engine, "eth0", mac)
		sw.Attach(nic, ether.GigabitLink)
		st := tcpip.NewStack(r.engine, "node")
		if _, err := st.AddInterface("eth0", tcpip.Addr{10, 0, 0, byte(i + 1)}, mac, nic, false); err != nil {
			t.Fatal(err)
		}
		return kernel.New(r.engine, "node", kernel.DefaultParams(), st)
	}
	job := &Job{Name: "chat"}
	for i := 0; i < n; i++ {
		k := mkNode(i)
		ag, err := NewAgent(k, ckpt.NewStore(k.Disk()), DefaultAgentParams())
		if err != nil {
			t.Fatal(err)
		}
		pod, err := zap.New(k, "chat-"+string(rune('a'+i)), zap.NetConfig{
			IP:  podIP(i),
			MAC: ether.MAC{2, 0, 0, 1, 0, byte(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		p := &chatterProg{ID: i, N: n, PeerIP: podIP((i + 1) % n)}
		if _, err := pod.Spawn("chatter", p); err != nil {
			t.Fatal(err)
		}
		ag.Manage(pod)
		r.progs = append(r.progs, p)
		r.pods = append(r.pods, pod)
		job.Members = append(job.Members, Member{Pod: pod.Name(), PodIP: podIP(i), Agent: ag.Addr()})
	}
	ck := mkNode(n)
	r.coord = NewCoordinator(ck.Stack())
	r.job = job
	connected := false
	r.coord.Connect(job, func(err error) {
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		connected = true
	})
	r.run(100 * sim.Millisecond)
	if !connected {
		t.Fatal("never connected")
	}
	return r
}

func (r *rig) run(d sim.Duration) {
	r.t.Helper()
	if err := r.engine.RunFor(d); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) checkpoint() *Result {
	r.t.Helper()
	var res *Result
	var cerr error
	fired := false
	r.coord.Checkpoint(r.job, func(got *Result, err error) {
		res, cerr, fired = got, err, true
	})
	for i := 0; i < 500 && !fired; i++ {
		r.run(20 * sim.Millisecond)
	}
	if !fired {
		r.t.Fatal("flush checkpoint never completed")
	}
	if cerr != nil {
		r.t.Fatalf("flush checkpoint: %v", cerr)
	}
	return res
}

func TestFlushCheckpointCorrectness(t *testing.T) {
	r := newRig(t, 4)
	r.run(sim.Second)
	for i, p := range r.progs {
		if p.Fault != "" {
			t.Fatalf("prog %d fault before checkpoint: %s", i, p.Fault)
		}
		if p.SentB == 0 {
			t.Fatalf("prog %d never sent", i)
		}
	}
	res := r.checkpoint()
	if res.Latency <= 0 || res.MaxFlush <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// The app continues, stream intact (drained bytes preserved in the
	// library buffer).
	sent := r.progs[0].SentB
	r.run(sim.Second)
	for i, p := range r.progs {
		if p.Fault != "" {
			t.Fatalf("prog %d fault after checkpoint: %s", i, p.Fault)
		}
	}
	if r.progs[0].SentB <= sent {
		t.Fatal("app did not progress after flush checkpoint")
	}
}

func TestFlushMarkerComplexityIsQuadratic(t *testing.T) {
	counts := map[int]int{}
	for _, n := range []int{2, 4} {
		r := newRig(t, n)
		r.run(500 * sim.Millisecond)
		res := r.checkpoint()
		counts[n] = res.MarkerMessages
		if want := n * (n - 1); res.MarkerMessages != want {
			t.Fatalf("n=%d markers = %d, want %d", n, res.MarkerMessages, want)
		}
		if want := 4 * n; res.CoordinatorMessages != want {
			t.Fatalf("n=%d coordinator msgs = %d, want %d", n, res.CoordinatorMessages, want)
		}
	}
	// 2 -> 4 nodes: coordinator messages double, markers grow 6x.
	if counts[4] != 6*counts[2] {
		t.Fatalf("marker growth %d -> %d not quadratic", counts[2], counts[4])
	}
}

func TestFlushDrainsInFlightData(t *testing.T) {
	// The checkpoint must not start saving until channels are empty; we
	// verify by checking stream integrity immediately after resuming a
	// checkpoint taken mid-burst (a lost in-flight chunk would corrupt
	// the numbered stream since, unlike Cruz, nothing retransmits it
	// after the channel state is discarded by restart — here we at least
	// assert the live continuation is clean and positions are consistent).
	r := newRig(t, 3)
	r.run(300 * sim.Millisecond)
	res := r.checkpoint()
	if res.MaxFlush > res.Latency {
		t.Fatalf("flush %v exceeds total %v", res.MaxFlush, res.Latency)
	}
	r.run(500 * sim.Millisecond)
	for i, p := range r.progs {
		if p.Fault != "" {
			t.Fatalf("prog %d fault: %s", i, p.Fault)
		}
	}
}

// TestFlushCheckpointFailsFastOnDeadAgentConn is the regression test for
// a hang cruzvet's errdrop analyzer surfaced: the coordinator discarded
// the error from the fCheckpoint fan-out send, so a control conn that
// died after Connect left the op pending forever — done was never
// invoked and the job stayed busy. A dead conn must fail the checkpoint
// the same way a missing conn does.
func TestFlushCheckpointFailsFastOnDeadAgentConn(t *testing.T) {
	r := newRig(t, 2)
	r.run(100 * sim.Millisecond)
	// Kill one established control conn out from under the coordinator.
	for _, fc := range r.coord.conns {
		fc.TCP().Destroy()
		break
	}
	var cerr error
	fired := false
	r.coord.Checkpoint(r.job, func(res *Result, err error) {
		cerr, fired = err, true
	})
	for i := 0; i < 100 && !fired; i++ {
		r.run(20 * sim.Millisecond)
	}
	if !fired {
		t.Fatal("checkpoint callback never fired: dead-conn send error was dropped")
	}
	if cerr == nil {
		t.Fatal("checkpoint reported success over a dead agent conn")
	}
	if !errors.Is(cerr, ErrAgent) {
		t.Fatalf("checkpoint error = %v, want ErrAgent", cerr)
	}
}
