package sim

import (
	"math/bits"
	"sort"
)

// calQueue is the engine's event queue: a calendar queue (Brown 1988)
// giving O(1) amortized push/pop instead of a single global binary
// heap's O(log n), with an unsorted overflow bag for the far-future
// tail.
//
// Events inside the current calendar "year" hash by time into buckets
// of a power-of-two width (the time→bucket map is a shift, not a
// division); a cursor walks the buckets in time order, skipping runs of
// empty buckets via an occupancy bitmap. Each bucket is itself a tiny
// binary min-heap on (at, seq), so the bucket minimum is its root: peek
// never scans a bucket, and a same-time burst of k events (a broadcast
// fan-out landing in one bucket) drains in O(log k) per pop rather than
// O(k). Events at or beyond the year's end — sparse timers, leases,
// retransmit backstops — sit in an unsorted bag of inline (at, event)
// pairs: insert and cancel are O(1) swaps, and when the calendar
// drains, one sequential partition scan migrates roughly the earlier
// half of the bag (split at a sampled median) into a fresh year. A
// roll's scan is linear but migrates a constant fraction, so the far
// tail pays amortized O(1) per event — never the per-event O(log n) a
// sorted overflow heap would charge at migration.
//
// The queue produces exactly the total order the global heap produced —
// strict (at, seq) ordering — so same-seed runs remain byte-identical:
// every bag event fires after every calendar event (at ≥ yearEnd), any
// two calendar events with equal times land in the same bucket, and the
// bucket heap disambiguates by seq, the FIFO scheduling order.
//
// Aliasing invariant: within one year, absolute bucket numbers
// (at>>shift) map to ring indexes without wrapping, which is what makes
// the first occupied bucket's root the global minimum. Years therefore
// start at the engine's current virtual time — the clock lower-bounds
// every future insert — and span exactly nbuckets widths; callers pass
// `now` in so the queue can hold that invariant without importing the
// engine's clock.
//
// Determinism: bucket width, bucket count, and year span are recomputed
// only at growth and year rolls, purely from the engine clock and the
// queued events' times (deterministic stride sample, sorted), so the
// layout — and therefore every cursor walk and sift — is a function of
// the schedule history alone.
type calQueue struct {
	buckets [][]*Event
	// words is an occupancy bitmap over buckets (bit i set ⇔ buckets[i]
	// non-empty), so the cursor walk crosses runs of empty buckets with
	// TrailingZeros64 instead of stepping one bucket at a time.
	words   []uint64
	mask    int
	shift   uint // bucket width is 1<<shift virtual ns
	calSize int  // events resident in buckets

	// curAbs is the scan cursor as an absolute bucket number (at>>shift):
	// no calendar event lives below it. It only moves forward (inserts
	// pull it back), so walk work within a year is paid once, not per
	// peek.
	curAbs int64

	// yearEnd is the exclusive time bound of the calendar: an event at
	// or past it goes to the overflow bag. Every bag event therefore
	// fires after every calendar event.
	yearEnd int64

	// bag holds the far-future overflow, unsorted. Entries carry the
	// firing time inline so roll scans read sequential memory instead of
	// chasing event pointers. A bag resident has ev.bucket == -1 and
	// ev.slot == its bag index (swap-remove keeps indexes dense).
	bag []bagEnt

	// fitbuf is reusable scratch for time samples, keeping steady-state
	// rolls allocation-free.
	fitbuf []int64
}

type bagEnt struct {
	at int64
	ev *Event
}

const (
	// cqMinBuckets is one bitmap word.
	cqMinBuckets = 64
	// cqFitSample caps how many event times a layout decision sorts;
	// beyond it a deterministic stride sample stands in for the full
	// population.
	cqFitSample = 4096
	// cqMaxShift keeps yearEnd arithmetic far from int64 overflow.
	cqMaxShift = 40
)

func newCalQueue() *calQueue {
	q := &calQueue{}
	q.setLayout(cqMinBuckets, 0, 0)
	return q
}

// setLayout (re)installs the calendar geometry; the buckets must be
// logically empty (calSize 0). nbuckets must be a power of two and a
// multiple of 64. The arrays are reused when the count is unchanged —
// steady-state year rolls allocate nothing.
func (q *calQueue) setLayout(nbuckets int, shift uint, start int64) {
	if nbuckets != len(q.buckets) {
		q.buckets = make([][]*Event, nbuckets)
		q.words = make([]uint64, nbuckets/64)
		q.mask = nbuckets - 1
	}
	q.calSize = 0
	q.shift = shift
	q.curAbs = start >> shift
	q.yearEnd = (start>>shift + int64(nbuckets)) << shift
}

// len returns the number of queued events.
func (q *calQueue) len() int { return q.calSize + len(q.bag) }

// evLess is the engine's total order: firing time, then schedule order.
func evLess(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// siftUp restores a bucket heap upward from slot i, keeping each
// event's slot index in step with its heap position. The moving event
// is held out as a "hole" so each level costs one pointer write, not a
// swap.
func siftUp(b []*Event, i int) {
	ev := b[i]
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(ev, b[p]) {
			break
		}
		b[i] = b[p]
		b[i].slot = i
		i = p
	}
	b[i] = ev
	ev.slot = i
}

// siftDown restores a bucket heap downward from slot i.
func siftDown(b []*Event, i int) {
	n := len(b)
	ev := b[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evLess(b[r], b[l]) {
			m = r
		}
		if !evLess(b[m], ev) {
			break
		}
		b[i] = b[m]
		b[i].slot = i
		i = m
	}
	b[i] = ev
	ev.slot = i
}

// calInsert places ev into its bucket heap; ev.at must be below
// yearEnd.
func (q *calQueue) calInsert(ev *Event) {
	abs := int64(ev.at) >> q.shift
	bi := int(abs) & q.mask
	b := q.buckets[bi]
	ev.bucket = bi
	ev.slot = len(b)
	b = append(b, ev)
	siftUp(b, len(b)-1)
	q.buckets[bi] = b
	q.words[bi>>6] |= 1 << uint(bi&63)
	q.calSize++
	if abs < q.curAbs {
		// The event lands before the cursor (which had advanced through
		// empty buckets); pull it back so the next scan cannot miss it.
		q.curAbs = abs
	}
}

// insert routes ev to the calendar or the overflow bag.
func (q *calQueue) insert(ev *Event) {
	if int64(ev.at) >= q.yearEnd {
		ev.bucket = -1
		ev.slot = len(q.bag)
		q.bag = append(q.bag, bagEnt{at: int64(ev.at), ev: ev})
	} else {
		q.calInsert(ev)
	}
}

// push enqueues ev. now is the engine clock, the lower bound of every
// future event time.
func (q *calQueue) push(ev *Event, now int64) {
	q.insert(ev)
	for q.calSize > 2*len(q.buckets) {
		q.grow(now)
	}
}

// remove unlinks ev, which must be queued (in either tier). ev.slot
// becomes -1, the "not queued" sentinel Cancel checks.
func (q *calQueue) remove(ev *Event) {
	if ev.bucket < 0 {
		i := ev.slot
		last := len(q.bag) - 1
		if i != last {
			q.bag[i] = q.bag[last]
			q.bag[i].ev.slot = i
		}
		q.bag[last] = bagEnt{}
		q.bag = q.bag[:last]
		ev.slot = -1
		return
	}
	b := q.buckets[ev.bucket]
	last := len(b) - 1
	i := ev.slot
	if i != last {
		b[i] = b[last]
		b[i].slot = i
	}
	b[last] = nil
	b = b[:last]
	q.buckets[ev.bucket] = b
	if i != last {
		// One of the two is a no-op: the moved leaf either sinks or
		// floats (it cannot need both).
		siftDown(b, i)
		siftUp(b, i)
	} else if last == 0 {
		q.words[ev.bucket>>6] &^= 1 << uint(ev.bucket&63)
	}
	q.calSize--
	ev.slot = -1
}

// peek returns the queue minimum by (at, seq) without removing it, or
// nil when empty. The minimum is always a calendar resident (bag events
// fire strictly later), and within the calendar it is the root of the
// first occupied bucket at or after the cursor: buckets below the
// cursor are empty by the cursor invariant, absolute bucket numbers are
// alias-free within a year, and equal-time events share a bucket where
// the heap order breaks the tie by seq.
func (q *calQueue) peek(now int64) *Event {
	for q.calSize == 0 {
		if len(q.bag) == 0 {
			return nil
		}
		q.rollYear(now)
	}
	j := int(q.curAbs) & q.mask
	d := 0
	w := q.words[j>>6] & (^uint64(0) << uint(j&63))
	for w == 0 {
		d += 64 - (j & 63)
		j = (j + 64 - (j & 63)) & q.mask
		w = q.words[j>>6]
	}
	adv := bits.TrailingZeros64(w) - (j & 63)
	q.curAbs += int64(d + adv)
	return q.buckets[(j+adv)&q.mask][0]
}

// pop removes and returns the queue minimum, or nil when empty. The
// minimum is its bucket's heap root, so the unlink is the cheap
// remove-root case: move the last leaf up and sift down once.
func (q *calQueue) pop(now int64) *Event {
	ev := q.peek(now)
	if ev == nil {
		return nil
	}
	b := q.buckets[ev.bucket]
	last := len(b) - 1
	if last > 0 {
		b[0] = b[last]
	}
	b[last] = nil
	b = b[:last]
	q.buckets[ev.bucket] = b
	if last > 0 {
		siftDown(b, 0)
	} else {
		q.words[ev.bucket>>6] &^= 1 << uint(ev.bucket&63)
	}
	q.calSize--
	ev.slot = -1
	return ev
}

// sampleTimes returns a deterministic stride sample of the bag's firing
// times, sorted ascending, in the reusable scratch buffer.
func (q *calQueue) sampleTimes() []int64 {
	stride := 1
	if len(q.bag) > cqFitSample {
		stride = len(q.bag) / cqFitSample
	}
	ts := q.fitbuf[:0]
	for i := 0; i < len(q.bag); i += stride {
		ts = append(ts, q.bag[i].at)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	q.fitbuf = ts[:0]
	return ts
}

// shiftFor returns the smallest shift whose bucket width w satisfies
// (nbuckets-1)·w ≥ span, so that one year starting anywhere within a
// bucket width still covers the span.
func shiftFor(span int64, nbuckets int) uint {
	w := (span + int64(nbuckets) - 2) / int64(nbuckets-1)
	if w <= 1 {
		return 0
	}
	shift := uint(bits.Len64(uint64(w - 1)))
	if shift > cqMaxShift {
		shift = cqMaxShift
	}
	return shift
}

// migrateBag moves every bag event below yearEnd into the calendar with
// one partition scan (swap-remove compaction, order-free).
func (q *calQueue) migrateBag() {
	for i := 0; i < len(q.bag); {
		if q.bag[i].at < q.yearEnd {
			ev := q.bag[i].ev
			last := len(q.bag) - 1
			q.bag[i] = q.bag[last]
			q.bag[last] = bagEnt{}
			q.bag = q.bag[:last]
			if i < len(q.bag) {
				q.bag[i].ev.slot = i
			}
			q.calInsert(ev)
		} else {
			q.bag[i].ev.slot = i
			i++
		}
	}
}

// rollYear restarts the empty calendar on the earlier part of the bag:
// it splits the bag at a sampled median firing time, sizes a year
// starting at now that covers the split point, and partition-migrates
// everything the year covers. Each roll scans the bag once but migrates
// at least half the sample's mass, so the far tail pays amortized O(1)
// per event. The bucket count grows to keep migrated years at roughly
// one event per bucket and never shrinks — a sparse wide calendar costs
// only memory, and the monotone cursor keeps its walks amortized.
func (q *calQueue) rollYear(now int64) {
	ts := q.sampleTimes()
	// The median sampled time must land inside the new year, so at
	// least half the sample (and roughly half the bag) migrates. The
	// now+1 floor keeps the year non-degenerate when every event fires
	// at the current instant.
	split := ts[len(ts)/2]
	if split <= now {
		split = now + 1
	}
	nbuckets := len(q.buckets)
	for nbuckets < 2*len(q.bag) {
		nbuckets *= 2
	}
	q.setLayout(nbuckets, shiftFor(split-now, nbuckets), now)
	q.migrateBag()
}

// grow doubles the bucket count and refits the year to the calendar
// residents: the new year starts at now, covers every current resident
// (nothing flows back to the bag), and admits any bag events it newly
// covers. Triggered when resident count exceeds twice the bucket count,
// so rebuild work is geometric in the population.
func (q *calQueue) grow(now int64) {
	evs := make([]*Event, 0, q.calSize)
	for _, b := range q.buckets {
		evs = append(evs, b...)
	}
	maxAt := int64(evs[0].at)
	for _, ev := range evs[1:] {
		if int64(ev.at) > maxAt {
			maxAt = int64(ev.at)
		}
	}
	nbuckets := 2 * len(q.buckets)
	q.setLayout(nbuckets, shiftFor(maxAt+1-now, nbuckets), now)
	for _, ev := range evs {
		q.calInsert(ev)
	}
	q.migrateBag()
}
