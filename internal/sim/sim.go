// Package sim provides a deterministic discrete-event simulation engine.
//
// All Cruz components — the simulated kernels, the TCP/IP stack, the
// Ethernet fabric, disks, and application programs — run on a single
// Engine. Virtual time only advances when the event at the head of the
// queue fires, so every experiment is reproducible bit-for-bit from its
// seed: there are no wall-clock reads and no reliance on Go scheduler
// interleaving.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration's unit so the familiar constants below read naturally.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as a floating-point number of
// microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. Events are ordered by firing time and,
// for equal times, by scheduling order, which keeps the simulation
// deterministic.
//
// Fired and canceled events are recycled through the engine's free list
// (scheduling is on the hot path: every packet, disk transfer, and
// pre-copy round segment is an event). A caller that retains the *Event
// returned by Schedule must therefore drop its reference once the event
// has fired or been canceled — the usual pattern is to nil the field at
// the top of the callback — and must never call Cancel, Canceled, or At
// on a pointer retained past that moment: the struct may already belong
// to an unrelated later event.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	bucket   int // calendar bucket index while queued
	slot     int // slot within the bucket; -1 once popped or canceled
	canceled bool
}

// At returns the virtual time at which the event fires (or would have
// fired, if canceled).
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event before it fired.
func (e *Event) Canceled() bool { return e.canceled }

// ErrStopped is returned by Run when Stop was called before the horizon or
// event exhaustion was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     Time
	queue   *calQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// fired counts events executed, useful for tests and runaway guards.
	fired uint64
	// traceSink holds the cluster's tracer (an opaque any so sim does not
	// depend on the trace package); components reach it through
	// trace.FromEngine. stepHook, when set, observes every dispatched
	// event — the tracer uses it for sampled dispatch counters.
	traceSink any
	stepHook  func()
	// free recycles fired and canceled events, keeping the steady-state
	// schedule/fire cycle allocation-free.
	free []*Event
}

// NewEngine returns an engine whose clock reads zero and whose
// deterministic random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{queue: newCalQueue(), rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All simulation
// randomness (initial TCP sequence numbers, jitter) must come from here.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetTraceSink attaches an opaque tracing sink to the engine. Every
// component holds the engine, so the sink is reachable from anywhere in
// the stack without the sim package importing the trace package.
func (e *Engine) SetTraceSink(v any) { e.traceSink = v }

// TraceSink returns the value set by SetTraceSink (nil if none).
func (e *Engine) TraceSink() any { return e.traceSink }

// SetStepHook installs fn to run after every event dispatch, with the
// clock already advanced to the event's firing time. A nil fn removes the
// hook. The hook must not schedule events.
func (e *Engine) SetStepHook(fn func()) { e.stepHook = fn }

// Schedule arranges for fn to run after delay elapses. A negative delay is
// treated as zero (fires "now", after already-queued events at the current
// time). It returns the Event so the caller may cancel it.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time at. Times in
// the past are clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = Event{at: at, seq: e.seq, fn: fn}
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn}
	}
	e.queue.push(ev, int64(e.now))
	return ev
}

// recycle returns a dead event to the free list, releasing its closure.
// slot stays -1 until the struct is reused, so Cancel on a pointer
// retained past firing is a deterministic no-op (returns false) for as
// long as the struct sits on the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.slot = -1
	e.free = append(e.free, ev)
}

// Cancel removes the event from the queue if it has not fired yet,
// reporting whether it was actually descheduled. A canceled event goes
// back to the free list, so the caller must drop its reference (see the
// Event retention contract). Calling Cancel on an event that already
// fired (or was already canceled) returns false without touching the
// free list — until the struct is reused by a later Schedule, at which
// point the stale pointer aliases the new event.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.canceled || ev.slot < 0 {
		return false
	}
	ev.canceled = true
	e.queue.remove(ev)
	e.recycle(ev)
	return true
}

// Step executes the single next event, advancing the clock to its firing
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev := e.queue.pop(int64(e.now))
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.fired++
	if e.stepHook != nil {
		e.stepHook()
	}
	fn := ev.fn
	// Recycle only after fn returns: callbacks may Cancel the event that
	// is firing (a harmless no-op), and that must not hit a reused struct.
	fn()
	e.recycle(ev)
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// ErrStopped if stopped, nil on drain.
func (e *Engine) Run() error {
	e.stopped = false
	for !e.stopped {
		if !e.Step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with firing times <= horizon, advancing the
// clock to exactly horizon if the queue runs dry earlier. It returns
// ErrStopped if Stop was called.
func (e *Engine) RunUntil(horizon Time) error {
	e.stopped = false
	for !e.stopped {
		if ev := e.queue.peek(int64(e.now)); ev == nil || ev.at > horizon {
			if e.now < horizon {
				e.now = horizon
			}
			return nil
		}
		e.Step()
	}
	return ErrStopped
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Duration) error { return e.RunUntil(e.now.Add(d)) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.queue.len() }

// Ticker invokes fn every period until canceled. It is a convenience for
// periodic activities such as rate sampling.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func()
	ev      *Event
	stopped bool
}

// NewTicker schedules fn every period, first firing one period from now.
func (e *Engine) NewTicker(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.period, func() {
		t.ev = nil // fired: the engine recycles it
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
	t.ev = nil
}
