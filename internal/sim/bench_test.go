package sim

import "testing"

// TestEventRecycling pins the free-list behavior: a fired or canceled
// event is reused by the next ScheduleAt, with its state fully reset.
func TestEventRecycling(t *testing.T) {
	e := NewEngine(1)
	ev1 := e.Schedule(Microsecond, func() {})
	e.Run()
	ev2 := e.Schedule(2*Microsecond, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event kept canceled state")
	}
	if ev2.At() != Time(3*Microsecond) {
		t.Fatalf("recycled event At = %v, want 3µs", ev2.At())
	}
	e.Cancel(ev2)
	ev3 := e.Schedule(Microsecond, func() {})
	if ev3 != ev2 {
		t.Fatal("canceled event was not recycled by the next Schedule")
	}
	if ev3.Canceled() {
		t.Fatal("recycled event kept canceled state after cancel-reuse")
	}
}

// TestSelfCancelDuringFire pins the Step ordering contract: a callback
// may Cancel the very event that is firing (a stale-pointer pattern the
// retention contract forbids for *retained* references, but which must
// at least not corrupt the free list when it happens synchronously).
func TestSelfCancelDuringFire(t *testing.T) {
	e := NewEngine(1)
	var ev *Event
	ran := false
	ev = e.Schedule(Microsecond, func() {
		ran = true
		if e.Cancel(ev) {
			t.Error("Cancel of the firing event reported true")
		}
	})
	e.Run()
	if !ran {
		t.Fatal("event never fired")
	}
	// The event must have been recycled exactly once: two schedules must
	// yield two distinct structs.
	a := e.Schedule(Microsecond, func() {})
	b := e.Schedule(Microsecond, func() {})
	if a == b {
		t.Fatal("free list handed out the same event twice")
	}
}

// BenchmarkEngineSchedule measures the steady-state schedule/fire cycle.
// With the free list this is allocation-free, which matters because every
// packet hop, disk transfer, and pre-copy segment is one of these cycles.
func BenchmarkEngineSchedule(b *testing.B) {
	b.Run("fire", func(b *testing.B) {
		e := NewEngine(1)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(Microsecond, fn)
			e.Step()
		}
	})
	b.Run("cancel", func(b *testing.B) {
		e := NewEngine(1)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := e.Schedule(Microsecond, fn)
			e.Cancel(ev)
		}
	})
}
