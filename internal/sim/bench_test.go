package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// TestEventRecycling pins the free-list behavior: a fired or canceled
// event is reused by the next ScheduleAt, with its state fully reset.
func TestEventRecycling(t *testing.T) {
	e := NewEngine(1)
	ev1 := e.Schedule(Microsecond, func() {})
	e.Run()
	ev2 := e.Schedule(2*Microsecond, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event kept canceled state")
	}
	if ev2.At() != Time(3*Microsecond) {
		t.Fatalf("recycled event At = %v, want 3µs", ev2.At())
	}
	e.Cancel(ev2)
	ev3 := e.Schedule(Microsecond, func() {})
	if ev3 != ev2 {
		t.Fatal("canceled event was not recycled by the next Schedule")
	}
	if ev3.Canceled() {
		t.Fatal("recycled event kept canceled state after cancel-reuse")
	}
}

// TestSelfCancelDuringFire pins the Step ordering contract: a callback
// may Cancel the very event that is firing (a stale-pointer pattern the
// retention contract forbids for *retained* references, but which must
// at least not corrupt the free list when it happens synchronously).
func TestSelfCancelDuringFire(t *testing.T) {
	e := NewEngine(1)
	var ev *Event
	ran := false
	ev = e.Schedule(Microsecond, func() {
		ran = true
		if e.Cancel(ev) {
			t.Error("Cancel of the firing event reported true")
		}
	})
	e.Run()
	if !ran {
		t.Fatal("event never fired")
	}
	// The event must have been recycled exactly once: two schedules must
	// yield two distinct structs.
	a := e.Schedule(Microsecond, func() {})
	b := e.Schedule(Microsecond, func() {})
	if a == b {
		t.Fatal("free list handed out the same event twice")
	}
}

// BenchmarkEngineSchedule measures the steady-state schedule/fire cycle.
// With the free list this is allocation-free, which matters because every
// packet hop, disk transfer, and pre-copy segment is one of these cycles.
func BenchmarkEngineSchedule(b *testing.B) {
	b.Run("fire", func(b *testing.B) {
		e := NewEngine(1)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(Microsecond, fn)
			e.Step()
		}
	})
	b.Run("cancel", func(b *testing.B) {
		e := NewEngine(1)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := e.Schedule(Microsecond, fn)
			e.Cancel(ev)
		}
	})
}

// heapEvent / heapQueue / heapSched replicate the pre-PR7 binary-heap
// scheduler (free list included) as the benchmark baseline, so the
// heap→calendar-queue win stays measurable in CI after the engine
// itself moved on.
type heapEvent struct {
	at    Time
	seq   uint64
	fn    func()
	index int
}

type heapQueue []*heapEvent

func (q heapQueue) Len() int { return len(q) }
func (q heapQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q heapQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *heapQueue) Push(x any) {
	e := x.(*heapEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *heapQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type heapSched struct {
	now   Time
	queue heapQueue
	seq   uint64
	free  []*heapEvent
}

func (h *heapSched) schedule(d Duration, fn func()) *heapEvent {
	h.seq++
	var ev *heapEvent
	if n := len(h.free); n > 0 {
		ev = h.free[n-1]
		h.free = h.free[:n-1]
		*ev = heapEvent{at: h.now.Add(d), seq: h.seq, fn: fn}
	} else {
		ev = &heapEvent{at: h.now.Add(d), seq: h.seq, fn: fn}
	}
	heap.Push(&h.queue, ev)
	return ev
}

func (h *heapSched) cancel(ev *heapEvent) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&h.queue, ev.index)
	ev.fn = nil
	h.free = append(h.free, ev)
	return true
}

func (h *heapSched) step() bool {
	if len(h.queue) == 0 {
		return false
	}
	ev := heap.Pop(&h.queue).(*heapEvent)
	h.now = ev.at
	ev.fn()
	ev.fn = nil
	h.free = append(h.free, ev)
	return true
}

// BenchmarkEngineScheduleMixed interleaves schedule, pop, and cancel at
// steady queue depths of 1e2 / 1e4 / 1e6, on both the live
// calendar-queue engine and the retired binary-heap baseline. The
// acceptance bar for PR 7 is calendar ≥ 2× heap events/sec at depth
// ≥ 1e4; `make gobench` prints both so the delta stays visible in CI.
func BenchmarkEngineScheduleMixed(b *testing.B) {
	// Deterministic delay mix resembling the cluster workload: mostly
	// sub-ms protocol/disk events, some zero-delay chains, a few long
	// timers.
	mkDelays := func() []Duration {
		rng := rand.New(rand.NewSource(1))
		delays := make([]Duration, 8192)
		for i := range delays {
			switch i % 16 {
			case 0:
				delays[i] = 0
			case 1:
				delays[i] = Duration(rng.Int63n(int64(2 * Second)))
			default:
				delays[i] = Duration(rng.Int63n(int64(Millisecond)))
			}
		}
		return delays
	}
	for _, depth := range []int{1e2, 1e4, 1e6} {
		depth := depth
		b.Run(fmt.Sprintf("calendar/depth=%d", depth), func(b *testing.B) {
			delays := mkDelays()
			e := NewEngine(1)
			fn := func() {}
			for i := 0; i < depth; i++ {
				e.Schedule(delays[i%len(delays)], fn)
			}
			var pend *Event
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Schedule(delays[i%len(delays)], fn)
				if i%4 == 3 {
					e.Cancel(pend)
					pend = e.Schedule(delays[(i+7)%len(delays)], fn)
				}
				e.Step()
			}
		})
		b.Run(fmt.Sprintf("heap/depth=%d", depth), func(b *testing.B) {
			delays := mkDelays()
			h := &heapSched{}
			fn := func() {}
			for i := 0; i < depth; i++ {
				h.schedule(delays[i%len(delays)], fn)
			}
			var pend *heapEvent
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.schedule(delays[i%len(delays)], fn)
				if i%4 == 3 {
					h.cancel(pend)
					pend = h.schedule(delays[(i+7)%len(delays)], fn)
				}
				h.step()
			}
		})
	}
}
