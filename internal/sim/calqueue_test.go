package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap are the pre-calendar-queue binary heap, kept as the
// ordering oracle: any correct priority queue over (at, seq) must yield
// the identical pop sequence, which is exactly the property that keeps
// same-seed golden traces byte-identical across the scheduler swap.
type refEvent struct {
	at  Time
	seq uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// TestCalendarMatchesHeapOrder drives the engine through a randomized
// mix of schedules (duplicate times, zero delays, far-future outliers)
// and cancels, checking the fire order event-by-event against the
// reference heap.
func TestCalendarMatchesHeapOrder(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(seed)
		ref := &refHeap{}

		type pending struct {
			ev  *Event
			seq uint64
		}
		var live []pending
		var fired []uint64 // engine-observed fire order, by seq
		var want []uint64  // reference order

		schedule := func() {
			var d Duration
			switch rng.Intn(10) {
			case 0:
				d = 0 // same-time burst: FIFO tie-break must hold
			case 1:
				d = Duration(rng.Int63n(int64(50 * Second))) // far outlier
			default:
				d = Duration(rng.Int63n(int64(5 * Millisecond)))
			}
			at := e.Now().Add(d)
			var ev *Event
			seq := uint64(0)
			ev = e.Schedule(d, func() { fired = append(fired, seq) })
			seq = ev.seq
			live = append(live, pending{ev, seq})
			heap.Push(ref, refEvent{at: at, seq: seq})
		}

		cancelOne := func() {
			if len(live) == 0 {
				return
			}
			i := rng.Intn(len(live))
			p := live[i]
			if e.Cancel(p.ev) {
				for j, re := range *ref {
					if re.seq == p.seq {
						heap.Remove(ref, j)
						break
					}
				}
			}
			live = append(live[:i], live[i+1:]...)
		}

		stepOne := func() {
			if !e.Step() {
				return
			}
			re := heap.Pop(ref).(refEvent)
			want = append(want, re.seq)
			for j, p := range live {
				if p.seq == re.seq {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		}

		for i := 0; i < 20000; i++ {
			switch rng.Intn(5) {
			case 0, 1:
				schedule()
			case 2:
				cancelOne()
			default:
				stepOne()
			}
			if e.Pending() != ref.Len() {
				t.Fatalf("seed %d op %d: Pending=%d ref=%d", seed, i, e.Pending(), ref.Len())
			}
		}
		for e.Step() {
			re := heap.Pop(ref).(refEvent)
			want = append(want, re.seq)
		}
		if len(fired) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference %d", seed, len(fired), len(want))
		}
		for i := range fired {
			if fired[i] != want[i] {
				t.Fatalf("seed %d: fire order diverged at %d: got seq %d, want %d", seed, i, fired[i], want[i])
			}
		}
	}
}

// TestRunUntilHorizon pins peek-based horizon semantics: RunUntil must
// fire exactly the events at or before the horizon and advance the clock
// to the horizon when the queue runs dry early — including when the next
// event is far beyond one calendar year (direct-search path).
func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*Millisecond, func() { got = append(got, 2) })
	e.Schedule(10*Second, func() { got = append(got, 3) }) // far out
	if err := e.RunFor(5 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("clock %v, want 5ms", e.Now())
	}
	if err := e.RunFor(10 * Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("far event never fired: %v", got)
	}
}

// TestCancelRecycledEvent pins the free-list retention contract for the
// calendar-queue scheduler: Cancel of an event that already fired and
// was recycled must return false deterministically, must not corrupt
// the free list (no double-insertion), and the struct must be handed
// out exactly once by subsequent schedules.
func TestCancelRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	stale := e.Schedule(Microsecond, func() {})
	e.Run()
	// stale now sits on the free list. Cancel must be a no-op.
	for i := 0; i < 3; i++ {
		if e.Cancel(stale) {
			t.Fatalf("Cancel %d of a fired-and-recycled event returned true", i)
		}
	}
	if len(e.free) != 1 {
		t.Fatalf("free list length %d after no-op cancels, want 1", len(e.free))
	}
	// The struct is reused exactly once: the two next schedules must get
	// distinct structs, the first of them the recycled one.
	a := e.Schedule(Microsecond, func() {})
	b := e.Schedule(Microsecond, func() {})
	if a != stale {
		t.Fatal("recycled struct was not reused by the next Schedule")
	}
	if a == b {
		t.Fatal("free list handed out the same struct twice")
	}
	// Once reused, the stale pointer aliases the live event a — Cancel
	// through it cancels a. That is the documented hazard, pinned here so
	// a change to it is a conscious one.
	if !e.Cancel(stale) {
		t.Fatal("Cancel through a reused pointer no longer reaches the live event")
	}
	if !a.Canceled() {
		t.Fatal("aliased cancel did not mark the live event")
	}
	if e.Cancel(b) != true {
		t.Fatal("unrelated live event was damaged by the aliased cancel")
	}
}

// TestCalendarResizeKeepsOrder forces growth and shrink cycles through
// the resize thresholds and checks order across them.
func TestCalendarResizeKeepsOrder(t *testing.T) {
	e := NewEngine(7)
	rng := rand.New(rand.NewSource(7))
	var fired []Time
	evs := make([]*Event, 0, 5000)
	for i := 0; i < 5000; i++ {
		evs = append(evs, e.Schedule(Duration(rng.Int63n(int64(Second))), func() {
			fired = append(fired, e.Now())
		}))
	}
	// Cancel a third to trigger shrink churn before the drain.
	canceled := 0
	for i := 0; i < len(evs); i += 3 {
		if e.Cancel(evs[i]) {
			canceled++
		}
	}
	e.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fire times went backwards at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
	if want := 5000 - canceled; len(fired) != want {
		t.Fatalf("fired %d, want %d", len(fired), want)
	}
}
