package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30*Microsecond, func() { order = append(order, 3) })
	e.Schedule(10*Microsecond, func() { order = append(order, 1) })
	e.Schedule(20*Microsecond, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != Time(30*Microsecond) {
		t.Errorf("Now = %v, want 30µs", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(-5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel reported false for queued event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(0, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel after fire reported true")
	}
}

func TestRunUntilAdvancesClockOnDrain(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*Millisecond, func() {})
	if err := e.RunUntil(Time(Second)); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(Second) {
		t.Fatalf("Now = %v, want 1s", e.Now())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(10*Millisecond, func() { fired++ })
	e.Schedule(2*Second, func() { fired++ })
	e.RunUntil(Time(Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after drain, want 2", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(10, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 20 {
		t.Fatalf("times = %v, want [10 20]", times)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := e.NewTicker(10*Millisecond, func() { ticks = append(ticks, e.Now()) })
	e.RunUntil(Time(35 * Millisecond))
	tk.Stop()
	e.RunUntil(Time(100 * Millisecond))
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, at := range ticks {
		want := Time((Duration(i) + 1) * 10 * Millisecond)
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopFromTick(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.NewTicker(Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.RunUntil(Time(Second))
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var out []int64
		var rec func()
		rec = func() {
			out = append(out, int64(e.Now()), e.Rand().Int63n(1000))
			if len(out) < 40 {
				e.Schedule(Duration(e.Rand().Int63n(int64(Millisecond))), rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3500 * Microsecond, "3.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// nondecreasing time order and the clock ends at the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var fireTimes []Time
		var max Duration
		for _, d := range delays {
			dd := Duration(d)
			if dd > max {
				max = dd
			}
			e.Schedule(dd, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == Time(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling any subset of events fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		e := NewEngine(9)
		fired := make(map[int]bool)
		evs := make([]*Event, len(delays))
		for i, d := range delays {
			i := i
			evs[i] = e.Schedule(Duration(d), func() { fired[i] = true })
		}
		want := make(map[int]bool)
		for i := range delays {
			cancel := i < len(cancelMask) && cancelMask[i]
			if cancel {
				e.Cancel(evs[i])
			} else {
				want[i] = true
			}
		}
		e.Run()
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
