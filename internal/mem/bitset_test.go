package mem

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBitsetSetHasCount(t *testing.T) {
	var b Bitset
	pns := []uint64{0x8048, 0x8048, 0x9000, 0x8000, 0x8048 + 64*1000, 3}
	want := map[uint64]bool{}
	for _, pn := range pns {
		fresh := !want[pn]
		if got := b.Set(pn); got != fresh {
			t.Fatalf("Set(%#x) = %v, want %v", pn, got, fresh)
		}
		want[pn] = true
	}
	if b.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(want))
	}
	for pn := range want {
		if !b.Has(pn) {
			t.Fatalf("Has(%#x) = false after Set", pn)
		}
	}
	if b.Has(0x8049) || b.Has(0) {
		t.Fatal("Has reports unset pages")
	}
}

func TestBitsetPagesSortedAndReset(t *testing.T) {
	var b Bitset
	rng := rand.New(rand.NewSource(7))
	want := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		pn := 0x8000 + uint64(rng.Intn(1<<14))
		b.Set(pn)
		want[pn] = true
	}
	got := b.Pages()
	if len(got) != len(want) {
		t.Fatalf("Pages returned %d pns, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Pages not sorted ascending")
	}
	for _, pn := range got {
		if !want[pn] {
			t.Fatalf("Pages returned unset pn %#x", pn)
		}
	}
	b.Reset()
	if b.Count() != 0 || len(b.Pages()) != 0 {
		t.Fatal("Reset did not clear the set")
	}
	// Reset keeps storage: refilling must work and stay sorted.
	b.Set(42)
	b.Set(0x8000)
	if got := b.Pages(); len(got) != 2 || got[0] != 42 || got[1] != 0x8000 {
		t.Fatalf("refill after Reset: got %v", got)
	}
}

func TestPageVersionAdvancesOnWrite(t *testing.T) {
	as := NewAddressSpace()
	base, err := as.Alloc(4*PageSize, "heap")
	if err != nil {
		t.Fatal(err)
	}
	pn := base / PageSize
	if v := as.PageVersion(pn); v != 0 {
		t.Fatalf("unwritten page version = %d, want 0", v)
	}
	as.Write(base, []byte{1})
	v1 := as.PageVersion(pn)
	as.Write(base, []byte{2})
	v2 := as.PageVersion(pn)
	if v1 == 0 || v2 <= v1 {
		t.Fatalf("versions did not advance: %d then %d", v1, v2)
	}
}

func TestSnapshotFreezesVersionsAndFiresFaultHook(t *testing.T) {
	as := NewAddressSpace()
	base, err := as.Alloc(4*PageSize, "heap")
	if err != nil {
		t.Fatal(err)
	}
	pn := base / PageSize
	as.Write(base, []byte{1})
	vAt := as.PageVersion(pn)

	var faults []uint64
	as.SetFaultHook(func(pn uint64) { faults = append(faults, pn) })
	snap := as.Snapshot()

	as.Write(base, []byte{2})
	as.Write(base, []byte{3}) // second write: COW already broken, no fault
	as.Write(base+PageSize, []byte{9})

	if snap.PageVersion(pn) != vAt {
		t.Fatalf("snapshot version moved: %d, want %d", snap.PageVersion(pn), vAt)
	}
	var got [1]byte
	snap.Read(base, got[:])
	if got[0] != 1 {
		t.Fatalf("snapshot sees post-snapshot write: %d", got[0])
	}
	if as.PageVersion(pn) <= vAt {
		t.Fatal("live version did not advance past snapshot")
	}
	if len(faults) != 1 || faults[0] != pn {
		t.Fatalf("fault hook fired %v, want exactly one fault on %#x", faults, pn)
	}
}

// BenchmarkDirtyTracking is the satellite micro-benchmark: the dirty set
// is scanned (sorted) every pre-copy round, so track + sorted-iterate is
// the operation that matters. The bitset wins on both the write path and
// the scan (no per-entry allocation, no sort).
func BenchmarkDirtyTracking(b *testing.B) {
	const pages = 8192
	pns := make([]uint64, pages)
	rng := rand.New(rand.NewSource(21))
	for i := range pns {
		pns[i] = 0x8048 + uint64(rng.Intn(4*pages))
	}

	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		var set Bitset
		var total int
		for i := 0; i < b.N; i++ {
			for _, pn := range pns {
				set.Set(pn)
			}
			set.ForEach(func(uint64) { total++ })
			set.Reset()
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		var total int
		for i := 0; i < b.N; i++ {
			set := make(map[uint64]bool)
			for _, pn := range pns {
				set[pn] = true
			}
			out := make([]uint64, 0, len(set))
			for pn := range set {
				out = append(out, pn)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			total += len(out)
		}
	})
}
