// Package mem implements the virtual-memory substrate of the simulated
// kernel: sparse, page-based address spaces with dirty-page tracking and
// copy-on-write snapshots.
//
// The contents of address spaces dominate checkpoint image size, exactly as
// the paper observes ("most of the state consists of the non-zero contents
// of the virtual memory of all processes running in the pod"). Dirty
// tracking supports the incremental-checkpoint optimization and COW
// snapshots support the concurrent-checkpoint optimization discussed in
// §5.2 of the paper.
package mem

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the size of a virtual-memory page in bytes, matching the
// i386 Linux systems of the paper's testbed.
const PageSize = 4096

// Page is one page of memory. Pages are only materialized when written, so
// untouched regions cost nothing in either RAM or checkpoint images.
type Page struct {
	Data [PageSize]byte
	// refs counts address spaces sharing this page under copy-on-write.
	refs int
	// version counts writes to this page's content lineage. A COW break
	// carries the version over to the private copy and then increments
	// it, so a snapshot's page keeps the version it had when the
	// snapshot was taken — capture code can assert it read a consistent
	// image even though the owning pod kept running.
	version uint64
	// hash caches the page's content hash; hashed says whether it is
	// current. The write path (writablePage) invalidates it, so clean
	// pages are hashed at most once between writes no matter how many
	// checkpoints inspect them.
	hash   PageHash
	hashed bool
}

// PageHash is a 128-bit content hash of one page: two independent FNV-1a
// streams computed in a single pass. It keys the content-addressed
// checkpoint chunk store; 128 bits makes accidental collisions across any
// plausible simulation negligible.
type PageHash struct {
	Lo, Hi uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// Second stream: same prime, different offset basis (the first
	// stream's basis mixed with an arbitrary odd constant) so the two
	// words are decorrelated.
	fnvOffsetAlt = fnvOffset64 ^ 0x9e3779b97f4a7c15
)

// hashPage computes the content hash of one page.
func hashPage(data *[PageSize]byte) PageHash {
	lo := uint64(fnvOffset64)
	hi := uint64(fnvOffsetAlt)
	for _, b := range data {
		lo = (lo ^ uint64(b)) * fnvPrime64
		hi = (hi ^ uint64(b<<1|b>>7)) * fnvPrime64
	}
	return PageHash{Lo: lo, Hi: hi}
}

// HashBlock computes the content hash of an arbitrary page-sized block
// (an erasure-coding parity block, say) with the same algorithm as page
// hashing, so equal bytes share one identity in content-addressed
// tables regardless of which path produced them.
func HashBlock(data []byte) PageHash {
	lo := uint64(fnvOffset64)
	hi := uint64(fnvOffsetAlt)
	for _, b := range data {
		lo = (lo ^ uint64(b)) * fnvPrime64
		hi = (hi ^ uint64(b<<1|b>>7)) * fnvPrime64
	}
	return PageHash{Lo: lo, Hi: hi}
}

// zeroPageHash is the hash of an all-zero (never-written) page, computed
// once on demand.
var zeroPageHash = hashPage(&[PageSize]byte{})

// Errors returned by address-space operations.
var (
	ErrOutOfRange = errors.New("mem: address out of mapped range")
	ErrBadAlloc   = errors.New("mem: invalid allocation size")
)

// Region is a contiguous mapped range of an address space, analogous to a
// Linux VMA.
type Region struct {
	Start uint64
	Size  uint64
	Name  string // e.g. "heap", "stack", "shm:3"
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Start + r.Size }

// AddressSpace is a sparse, paged virtual address space. The zero value is
// an empty address space ready for use, but NewAddressSpace is preferred
// because it sets a conventional allocation base.
type AddressSpace struct {
	pages   map[uint64]*Page // keyed by page number
	dirty   Bitset           // pages written since last ClearDirty
	regions []Region
	next    uint64 // next allocation address (bump allocator)

	// faultHook, when set, observes every copy-on-write break (a write
	// to a page shared with a snapshot). The kernel wires it to charge
	// the write fault's cost to the running process — the runtime price
	// of checkpointing concurrently with execution.
	faultHook func(pn uint64)

	// hashComputes counts fresh page-hash computations performed through
	// this address space (cache misses); checkpoint code uses the delta
	// across a capture to charge simulated hashing cost for exactly the
	// pages that were re-hashed.
	hashComputes uint64
}

// allocBase mimics the customary base of the heap in a Linux process;
// the exact value is immaterial, it just keeps addresses recognizable.
const allocBase = 0x0804_8000

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		pages: make(map[uint64]*Page),
		next:  allocBase,
	}
}

func (as *AddressSpace) init() {
	if as.pages == nil {
		as.pages = make(map[uint64]*Page)
		as.next = allocBase
	}
}

// SetFaultHook installs fn to run on every copy-on-write break in this
// address space (nil removes it). The hook fires before the write
// proceeds, once per page per snapshot generation — exactly when a real
// kernel would take a write-protection fault on a snapshotted page.
func (as *AddressSpace) SetFaultHook(fn func(pn uint64)) { as.faultHook = fn }

// Alloc maps a new region of the given size (rounded up to whole pages)
// and returns its base address. Alloc never reuses addresses, which keeps
// restored images trivially relocatable.
func (as *AddressSpace) Alloc(size uint64, name string) (uint64, error) {
	as.init()
	if size == 0 {
		return 0, ErrBadAlloc
	}
	size = (size + PageSize - 1) / PageSize * PageSize
	base := as.next
	as.next += size + PageSize // leave a guard page between regions
	as.regions = append(as.regions, Region{Start: base, Size: size, Name: name})
	return base, nil
}

// Regions returns the mapped regions in allocation order. The returned
// slice is a copy.
func (as *AddressSpace) Regions() []Region {
	out := make([]Region, len(as.regions))
	copy(out, as.regions)
	return out
}

func (as *AddressSpace) regionFor(addr uint64) *Region {
	for i := range as.regions {
		r := &as.regions[i]
		if addr >= r.Start && addr < r.End() {
			return r
		}
	}
	return nil
}

// checkRange verifies [addr, addr+n) lies within a single mapped region.
func (as *AddressSpace) checkRange(addr uint64, n int) error {
	if n < 0 {
		return ErrBadAlloc
	}
	if n == 0 {
		return nil
	}
	r := as.regionFor(addr)
	if r == nil || addr+uint64(n) > r.End() {
		return fmt.Errorf("%w: [%#x,+%d)", ErrOutOfRange, addr, n)
	}
	return nil
}

// writablePage returns the page containing page-number pn, materializing
// it and breaking copy-on-write sharing as needed.
func (as *AddressSpace) writablePage(pn uint64) *Page {
	p := as.pages[pn]
	switch {
	case p == nil:
		p = &Page{refs: 1}
		as.pages[pn] = p
	case p.refs > 1:
		// Copy-on-write break: give this address space a private copy.
		// The snapshot keeps the shared page (and its version) intact;
		// only the live side's lineage advances.
		p.refs--
		np := &Page{Data: p.Data, refs: 1, version: p.version}
		as.pages[pn] = np
		p = np
		if as.faultHook != nil {
			as.faultHook(pn)
		}
	}
	as.dirty.Set(pn)
	p.version++
	// The caller is about to write: whatever hash was cached no longer
	// describes the contents.
	p.hashed = false
	return p
}

// Write copies b into the address space at addr.
func (as *AddressSpace) Write(addr uint64, b []byte) error {
	as.init()
	if err := as.checkRange(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		pn := addr / PageSize
		off := addr % PageSize
		n := copy(as.writablePage(pn).Data[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// Read copies len(b) bytes from the address space at addr into b. Reads of
// never-written pages yield zeros, as on a real demand-zero kernel.
func (as *AddressSpace) Read(addr uint64, b []byte) error {
	as.init()
	if err := as.checkRange(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		pn := addr / PageSize
		off := addr % PageSize
		var n int
		if p := as.pages[pn]; p != nil {
			n = copy(b, p.Data[off:])
		} else {
			n = len(b)
			if max := PageSize - int(off); n > max {
				n = max
			}
			for i := 0; i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteUint64 stores v little-endian at addr.
func (as *AddressSpace) WriteUint64(addr uint64, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return as.Write(addr, b[:])
}

// ReadUint64 loads a little-endian uint64 from addr.
func (as *AddressSpace) ReadUint64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

// ResidentPages returns the number of materialized pages.
func (as *AddressSpace) ResidentPages() int { return len(as.pages) }

// ResidentBytes returns the materialized memory size in bytes. This is
// what a full checkpoint must write to stable storage.
func (as *AddressSpace) ResidentBytes() uint64 { return uint64(len(as.pages)) * PageSize }

// DirtyPages returns the number of pages written since the last ClearDirty.
func (as *AddressSpace) DirtyPages() int { return as.dirty.Count() }

// DirtyBytes returns DirtyPages in bytes; an incremental checkpoint writes
// only this much.
func (as *AddressSpace) DirtyBytes() uint64 { return uint64(as.dirty.Count()) * PageSize }

// ClearDirty resets dirty-page tracking, typically right after a
// checkpoint captures the space. The bitset's storage is kept, so the
// per-round clear of a pre-copy loop allocates nothing.
func (as *AddressSpace) ClearDirty() {
	as.dirty.Reset()
}

// MarkDirty re-marks a page dirty without writing it. The checkpoint
// abort path uses it to undo a round's ClearDirty: pages whose only
// up-to-date copy lived in a discarded pre-copy round must be saved
// again by the next capture.
func (as *AddressSpace) MarkDirty(pn uint64) {
	as.init()
	as.dirty.Set(pn)
}

// PageNumbers returns the sorted page numbers of materialized pages. If
// dirtyOnly is set, only pages dirtied since the last ClearDirty are
// returned (the bitset iterates in ascending order, so no sort is
// needed).
func (as *AddressSpace) PageNumbers(dirtyOnly bool) []uint64 {
	if dirtyOnly {
		return as.dirty.Pages()
	}
	out := make([]uint64, 0, len(as.pages))
	for pn := range as.pages {
		out = append(out, pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageData returns the contents of page pn. The returned slice aliases the
// live page and must not be modified; checkpoint code copies it into the
// image.
func (as *AddressSpace) PageData(pn uint64) []byte {
	if p := as.pages[pn]; p != nil {
		return p.Data[:]
	}
	return nil
}

// PageHash returns the content hash of page pn, computing and caching it
// if the cached value is stale. Never-written pages hash as the zero page.
// Because the cache is invalidated only by the write path, a page that
// stayed clean between two checkpoints is hashed at most once — the
// property that makes content-addressed checkpointing cheap at steady
// state.
func (as *AddressSpace) PageHash(pn uint64) PageHash {
	p := as.pages[pn]
	if p == nil {
		return zeroPageHash
	}
	if !p.hashed {
		p.hash = hashPage(&p.Data)
		p.hashed = true
		as.hashComputes++
	}
	return p.hash
}

// HashComputes returns the number of fresh (cache-miss) page-hash
// computations performed through this address space.
func (as *AddressSpace) HashComputes() uint64 { return as.hashComputes }

// InstallPage writes a whole page at page-number pn, mapping a covering
// region if necessary. It is used by restore, which replays pages from a
// checkpoint image into a fresh address space.
func (as *AddressSpace) InstallPage(pn uint64, data []byte) error {
	as.init()
	if len(data) != PageSize {
		return fmt.Errorf("%w: page data must be %d bytes, got %d", ErrBadAlloc, PageSize, len(data))
	}
	addr := pn * PageSize
	if as.regionFor(addr) == nil {
		return fmt.Errorf("%w: page %#x not covered by a region", ErrOutOfRange, addr)
	}
	copy(as.writablePage(pn).Data[:], data)
	return nil
}

// InstallRegion maps a region at an exact base address, used by restore to
// recreate the checkpointed layout.
func (as *AddressSpace) InstallRegion(r Region) error {
	as.init()
	if r.Size == 0 || r.Size%PageSize != 0 || r.Start%PageSize != 0 {
		return fmt.Errorf("%w: region %+v", ErrBadAlloc, r)
	}
	for i := range as.regions {
		ex := as.regions[i]
		if r.Start < ex.End() && ex.Start < r.End() {
			return fmt.Errorf("%w: region %+v overlaps %+v", ErrBadAlloc, r, ex)
		}
	}
	as.regions = append(as.regions, r)
	if r.End()+PageSize > as.next {
		as.next = r.End() + PageSize
	}
	return nil
}

// Snapshot returns a copy-on-write clone of the address space: both the
// original and the clone see the current contents, pages are shared until
// either side writes. Snapshot is O(resident pages) in map work but copies
// no page data, which is what lets a checkpoint proceed concurrently with
// application execution: the snapshot "write-protects" every shared page,
// and the live side's write path lazily duplicates a page on its first
// post-snapshot write (firing the fault hook), leaving the snapshot's
// copy — and its version counter — frozen at the snapshot instant.
func (as *AddressSpace) Snapshot() *AddressSpace {
	as.init()
	clone := &AddressSpace{
		pages:   make(map[uint64]*Page, len(as.pages)),
		next:    as.next,
		regions: make([]Region, len(as.regions)),
	}
	copy(clone.regions, as.regions)
	for pn, p := range as.pages {
		p.refs++
		clone.pages[pn] = p
	}
	return clone
}

// Release drops a snapshot's copy-on-write sharing: every page the
// snapshot still shares with its origin returns to sole ownership, so
// later writes in the live space stop paying COW breaks (and stop firing
// the fault hook). The snapshot must not be used after Release. Calling
// Release on a live space that snapshots were taken FROM — rather than
// on the snapshot itself — would corrupt the sharing counts.
func (as *AddressSpace) Release() {
	for _, p := range as.pages {
		p.refs--
	}
	as.pages = nil
	as.regions = nil
}

// PageVersion returns page pn's write-version counter (0 for a page that
// was never written). A snapshot's versions never change, which is the
// consistency invariant concurrent capture relies on; the live space's
// version advances on every write, including the one that breaks COW.
func (as *AddressSpace) PageVersion(pn uint64) uint64 {
	if p := as.pages[pn]; p != nil {
		return p.version
	}
	return 0
}

// SharedPages reports how many of the space's pages are currently shared
// with a snapshot (refs > 1). Useful in tests and ablation benchmarks.
func (as *AddressSpace) SharedPages() int {
	n := 0
	for _, p := range as.pages {
		if p.refs > 1 {
			n++
		}
	}
	return n
}
