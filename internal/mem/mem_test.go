package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocAndRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	base, err := as.Alloc(10000, "heap")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox jumps over the lazy dog")
	if err := as.Write(base+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip = %q, want %q", got, msg)
	}
}

func TestAllocRoundsToPages(t *testing.T) {
	as := NewAddressSpace()
	base, err := as.Alloc(1, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	r := as.Regions()[0]
	if r.Size != PageSize {
		t.Fatalf("region size = %d, want %d", r.Size, PageSize)
	}
	// The whole rounded page must be addressable.
	if err := as.Write(base+PageSize-1, []byte{1}); err != nil {
		t.Fatalf("write at end of rounded page: %v", err)
	}
}

func TestAllocZeroFails(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Alloc(0, "zero"); !errors.Is(err, ErrBadAlloc) {
		t.Fatalf("err = %v, want ErrBadAlloc", err)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(PageSize, "one")
	if err := as.Write(base+PageSize, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: err = %v, want ErrOutOfRange", err)
	}
	if err := as.Read(0, make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read unmapped: err = %v, want ErrOutOfRange", err)
	}
	// A write spanning the region end must fail even if it starts inside.
	if err := as.Write(base+PageSize-2, []byte{1, 2, 3, 4}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("straddling write: err = %v, want ErrOutOfRange", err)
	}
}

func TestDemandZero(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(4*PageSize, "zeros")
	b := make([]byte, 100)
	for i := range b {
		b[i] = 0xFF
	}
	if err := as.Read(base+PageSize+5, b); err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want 0 (demand-zero)", i, v)
		}
	}
	if as.ResidentPages() != 0 {
		t.Fatalf("reads materialized %d pages", as.ResidentPages())
	}
}

func TestCrossPageWrite(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(3*PageSize, "span")
	data := make([]byte, 2*PageSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := as.Write(base+PageSize/2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(base+PageSize/2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page write round trip mismatch")
	}
	if as.ResidentPages() != 3 {
		t.Fatalf("ResidentPages = %d, want 3", as.ResidentPages())
	}
}

func TestUint64RoundTrip(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(PageSize, "u64")
	const v = uint64(0xDEADBEEF_CAFEF00D)
	if err := as.WriteUint64(base+8, v); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadUint64(base + 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("got %#x, want %#x", got, v)
	}
}

func TestDirtyTracking(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(10*PageSize, "d")
	as.Write(base, make([]byte, 3*PageSize))
	if as.DirtyPages() != 3 {
		t.Fatalf("DirtyPages = %d, want 3", as.DirtyPages())
	}
	as.ClearDirty()
	if as.DirtyPages() != 0 {
		t.Fatalf("DirtyPages after clear = %d", as.DirtyPages())
	}
	as.Write(base+5*PageSize, []byte{1})
	if as.DirtyPages() != 1 {
		t.Fatalf("DirtyPages = %d, want 1", as.DirtyPages())
	}
	pns := as.PageNumbers(true)
	if len(pns) != 1 || pns[0] != (base+5*PageSize)/PageSize {
		t.Fatalf("dirty page numbers = %v", pns)
	}
	if as.ResidentPages() != 4 {
		t.Fatalf("ResidentPages = %d, want 4", as.ResidentPages())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(PageSize, "s")
	as.Write(base, []byte("original"))
	snap := as.Snapshot()

	// Writing the original must not change the snapshot.
	as.Write(base, []byte("MUTATED!"))
	got := make([]byte, 8)
	if err := snap.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("snapshot sees %q, want %q", got, "original")
	}
	// And the original must see its own write.
	as.Read(base, got)
	if string(got) != "MUTATED!" {
		t.Fatalf("original sees %q", got)
	}
}

func TestSnapshotSharesUntilWrite(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(8*PageSize, "cow")
	as.Write(base, make([]byte, 8*PageSize))
	snap := as.Snapshot()
	if as.SharedPages() != 8 {
		t.Fatalf("SharedPages = %d, want 8", as.SharedPages())
	}
	as.Write(base, []byte{1}) // breaks exactly one page
	if as.SharedPages() != 7 {
		t.Fatalf("SharedPages after write = %d, want 7", as.SharedPages())
	}
	if snap.ResidentPages() != 8 {
		t.Fatalf("snapshot ResidentPages = %d", snap.ResidentPages())
	}
}

func TestSnapshotWriteBreaksSharing(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(PageSize, "cow2")
	as.Write(base, []byte("base"))
	snap := as.Snapshot()
	// Writing through the snapshot must not disturb the original.
	snap.Write(base, []byte("snap"))
	got := make([]byte, 4)
	as.Read(base, got)
	if string(got) != "base" {
		t.Fatalf("original corrupted by snapshot write: %q", got)
	}
}

func TestInstallRegionAndPage(t *testing.T) {
	src := NewAddressSpace()
	base, _ := src.Alloc(2*PageSize, "img")
	src.Write(base, bytes.Repeat([]byte{0xAB}, 2*PageSize))

	dst := NewAddressSpace()
	for _, r := range src.Regions() {
		if err := dst.InstallRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, pn := range src.PageNumbers(false) {
		data := make([]byte, PageSize)
		copy(data, src.PageData(pn))
		if err := dst.InstallPage(pn, data); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, 2*PageSize)
	if err := dst.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 2*PageSize)) {
		t.Fatal("restored contents mismatch")
	}
	// New allocations in the restored space must not collide.
	nb, err := dst.Alloc(PageSize, "post")
	if err != nil {
		t.Fatal(err)
	}
	if nb < base+2*PageSize {
		t.Fatalf("post-restore alloc %#x collides with installed region", nb)
	}
}

func TestInstallRegionOverlapRejected(t *testing.T) {
	as := NewAddressSpace()
	if err := as.InstallRegion(Region{Start: 0x10000, Size: 2 * PageSize}); err != nil {
		t.Fatal(err)
	}
	err := as.InstallRegion(Region{Start: 0x10000 + PageSize, Size: PageSize})
	if !errors.Is(err, ErrBadAlloc) {
		t.Fatalf("overlap err = %v, want ErrBadAlloc", err)
	}
}

func TestInstallPageValidation(t *testing.T) {
	as := NewAddressSpace()
	if err := as.InstallPage(5, make([]byte, 10)); !errors.Is(err, ErrBadAlloc) {
		t.Fatalf("short page err = %v", err)
	}
	if err := as.InstallPage(5, make([]byte, PageSize)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("uncovered page err = %v", err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var as AddressSpace
	if _, err := as.Alloc(PageSize, "z"); err != nil {
		t.Fatal(err)
	}
}

// Property: a sequence of random writes followed by reads behaves exactly
// like a flat reference buffer.
func TestPropertyWriteReadMatchesReference(t *testing.T) {
	const regionSize = 8 * PageSize
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		as := NewAddressSpace()
		base, _ := as.Alloc(regionSize, "ref")
		ref := make([]byte, regionSize)
		for _, op := range ops {
			off := uint64(op.Off) % regionSize
			data := op.Data
			if max := regionSize - off; uint64(len(data)) > max {
				data = data[:max]
			}
			if err := as.Write(base+off, data); err != nil {
				return false
			}
			copy(ref[off:], data)
		}
		got := make([]byte, regionSize)
		if err := as.Read(base, got); err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshots taken at arbitrary points remain equal to the
// reference state captured at the same point, regardless of later writes.
func TestPropertySnapshotImmutability(t *testing.T) {
	const regionSize = 4 * PageSize
	f := func(rounds []struct {
		Off  uint16
		Val  byte
		Snap bool
	}) bool {
		as := NewAddressSpace()
		base, _ := as.Alloc(regionSize, "ref")
		ref := make([]byte, regionSize)
		type pair struct {
			snap *AddressSpace
			ref  []byte
		}
		var snaps []pair
		for _, r := range rounds {
			if r.Snap {
				rc := make([]byte, regionSize)
				copy(rc, ref)
				snaps = append(snaps, pair{as.Snapshot(), rc})
			}
			off := uint64(r.Off) % regionSize
			if err := as.Write(base+off, []byte{r.Val}); err != nil {
				return false
			}
			ref[off] = r.Val
		}
		for _, p := range snaps {
			got := make([]byte, regionSize)
			if err := p.snap.Read(base, got); err != nil {
				return false
			}
			if !bytes.Equal(got, p.ref) {
				return false
			}
		}
		got := make([]byte, regionSize)
		as.Read(base, got)
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPageHashCachesUntilWrite(t *testing.T) {
	as := NewAddressSpace()
	base, err := as.Alloc(4*PageSize, "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Write(base, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	pn := base / PageSize
	h1 := as.PageHash(pn)
	if got := as.HashComputes(); got != 1 {
		t.Fatalf("HashComputes = %d, want 1", got)
	}
	// Clean page: repeated hashing must hit the cache.
	for i := 0; i < 10; i++ {
		if as.PageHash(pn) != h1 {
			t.Fatal("cached hash changed without a write")
		}
	}
	if got := as.HashComputes(); got != 1 {
		t.Fatalf("clean page re-hashed: HashComputes = %d, want 1", got)
	}
	// A write invalidates exactly that page's cache.
	if err := as.Write(base, []byte{9}); err != nil {
		t.Fatal(err)
	}
	h2 := as.PageHash(pn)
	if h2 == h1 {
		t.Fatal("hash unchanged after content changed")
	}
	if got := as.HashComputes(); got != 2 {
		t.Fatalf("HashComputes = %d, want 2", got)
	}
}

func TestPageHashContentAddressed(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(4*PageSize, "h")
	payload := []byte("same content on two different pages")
	as.Write(base, payload)
	as.Write(base+PageSize, payload)
	as.Write(base+2*PageSize, []byte("different content"))
	p0 := as.PageHash(base / PageSize)
	p1 := as.PageHash(base/PageSize + 1)
	p2 := as.PageHash(base/PageSize + 2)
	if p0 != p1 {
		t.Fatal("identical pages hash differently")
	}
	if p0 == p2 {
		t.Fatal("different pages collide")
	}
	// A never-materialized page hashes as the zero page, equal to an
	// explicitly zeroed one.
	zeroed := make([]byte, PageSize)
	as.Write(base+3*PageSize, zeroed)
	if as.PageHash(base/PageSize+3) != as.PageHash(base/PageSize+100000) {
		t.Fatal("zeroed page and unmaterialized page hash differently")
	}
}

func TestPageHashSurvivesSnapshotSharing(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(PageSize, "h")
	as.Write(base, []byte{42})
	pn := base / PageSize
	orig := as.PageHash(pn)

	snap := as.Snapshot()
	// Snapshot shares the page object, so its cached hash is free.
	if snap.PageHash(pn) != orig {
		t.Fatal("snapshot hash differs from original")
	}
	if snap.HashComputes() != 0 {
		t.Fatal("snapshot recomputed a cached hash")
	}
	// COW break: the writer's copy is invalidated, the snapshot keeps the
	// old contents and the old (still valid) hash.
	as.Write(base, []byte{43})
	if snap.PageHash(pn) != orig {
		t.Fatal("snapshot hash changed after writer's COW break")
	}
	if as.PageHash(pn) == orig {
		t.Fatal("writer hash unchanged after COW write")
	}
}
