package mem

import "math/bits"

// Bitset is a sparse, offset-based bitset over page numbers. Address
// spaces start allocating near allocBase, so the first set bit anchors
// the word array and the set grows in either direction as needed.
//
// It replaces the dirty map[uint64]bool: the pre-copy loop scans the
// dirty set every round, and a bitset gives both a compact scan and a
// naturally ascending iteration order — map iteration order is exactly
// what cruzvet's maporder analyzer exists to keep out of sim-visible
// state.
type Bitset struct {
	base  uint64 // word index (pn >> 6) of words[0]
	words []uint64
	count int
}

// Set marks pn, reporting whether it was newly set.
func (b *Bitset) Set(pn uint64) bool {
	w := pn >> 6
	switch {
	case b.words == nil:
		b.base = w
		b.words = make([]uint64, 1, 8)
	case w < b.base:
		shift := b.base - w
		grown := make([]uint64, uint64(len(b.words))+shift)
		copy(grown[shift:], b.words)
		b.words = grown
		b.base = w
	case w >= b.base+uint64(len(b.words)):
		need := w - b.base + 1
		for uint64(len(b.words)) < need {
			b.words = append(b.words, 0)
		}
	}
	bit := uint64(1) << (pn & 63)
	idx := w - b.base
	if b.words[idx]&bit != 0 {
		return false
	}
	b.words[idx] |= bit
	b.count++
	return true
}

// Has reports whether pn is set.
func (b *Bitset) Has(pn uint64) bool {
	w := pn >> 6
	if b.words == nil || w < b.base || w >= b.base+uint64(len(b.words)) {
		return false
	}
	return b.words[w-b.base]&(1<<(pn&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int { return b.count }

// Reset clears every bit but keeps the allocated words, so a dirty set
// that refills to a similar footprint (the steady state between
// checkpoint rounds) allocates nothing.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// ForEach visits the set page numbers in ascending order.
func (b *Bitset) ForEach(fn func(pn uint64)) {
	for i, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn((b.base+uint64(i))<<6 | uint64(bit))
			w &^= 1 << bit
		}
	}
}

// Pages returns the set page numbers as a sorted slice.
func (b *Bitset) Pages() []uint64 {
	out := make([]uint64, 0, b.count)
	b.ForEach(func(pn uint64) { out = append(out, pn) })
	return out
}
