// Package zap implements the Zap process-virtualization layer the paper
// builds on (Osman et al., OSDI 2002): PrOcess Domains ("pods") — private
// virtualized namespaces created by a thin interposition layer between
// applications and the OS — plus this work's extensions: a per-pod
// virtual network interface with migratable, externally routable IP and
// MAC addresses (§4.2).
//
// A pod gives its processes:
//
//   - a private virtual-PID namespace, decoupled from kernel pids, so a
//     restarted pod works even when its old pids are in use (the paper's
//     headline advantage over BLCR);
//   - a virtual network interface (VIF) that is the only interface its
//     processes can see or bind to — bind and connect are interposed to
//     land on the VIF's address;
//   - an interposed SIOCGIFHWADDR so DHCP clients inside the pod see a
//     stable "fake" MAC that survives migration even when the physical
//     MAC cannot move.
package zap

import (
	"errors"
	"fmt"

	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Errors returned by pod operations.
var (
	ErrPodStopped  = errors.New("zap: pod is stopped")
	ErrNoSuchVPID  = errors.New("zap: no such virtual pid")
	ErrPodDead     = errors.New("zap: pod destroyed")
	ErrNoInterface = errors.New("zap: node has no physical interface")
)

// DefaultInterpositionCost is the per-syscall CPU overhead of the thin
// virtualization layer. The paper measures total runtime overhead below
// 0.5%, "since the underlying Zap mechanism requires nothing more than
// virtualizing identifiers".
const DefaultInterpositionCost = 150 * sim.Nanosecond

// NetConfig describes a pod's virtual network interface.
type NetConfig struct {
	// IP is the pod's externally routable address (static assignment; a
	// DHCP client inside the pod may instead obtain one dynamically).
	IP tcpip.Addr
	// MAC is the VIF's hardware address. Zero means the VIF shares the
	// physical NIC's MAC (the paper's alternate solution for hardware
	// without multi-MAC support); migration then relies on gratuitous
	// ARP to move the IP.
	MAC ether.MAC
	// FakeMAC, if nonzero, is returned by the interposed SIOCGIFHWADDR
	// so DHCP leases keyed on it survive migration. Defaults to MAC (or
	// the physical MAC when MAC is zero).
	FakeMAC ether.MAC
}

// Pod is a PrOcess Domain: a group of processes with private namespaces
// that checkpoint, restart, and migrate as a unit.
type Pod struct {
	name      string
	kern      *kernel.Kernel
	cfg       NetConfig
	vif       *tcpip.Interface
	sharedMAC bool

	procs    map[int]*kernel.Process // vpid -> process
	vpids    map[int]int             // physical pid -> vpid
	nextVPID int

	stopped   bool
	destroyed bool

	// ipcIDs records which kernel IPC objects belong to this pod (for
	// checkpointing; the kernel table is node-global).
	shmIDs map[int]bool
	semIDs map[int]bool

	interposer podInterposer
}

// New creates a pod on the given node with a fresh VIF.
func New(kern *kernel.Kernel, name string, cfg NetConfig) (*Pod, error) {
	p := &Pod{
		name:     name,
		kern:     kern,
		cfg:      cfg,
		procs:    make(map[int]*kernel.Process),
		vpids:    make(map[int]int),
		nextVPID: 1,
		shmIDs:   make(map[int]bool),
		semIDs:   make(map[int]bool),
	}
	p.interposer.pod = p
	if err := p.attachVIF(); err != nil {
		return nil, err
	}
	return p, nil
}

// attachVIF creates the pod's virtual interface on the node's stack,
// backed by the node's physical NIC.
func (p *Pod) attachVIF() error {
	st := p.kern.Stack()
	if st == nil {
		return ErrNoInterface
	}
	ifaces := st.Interfaces()
	if len(ifaces) == 0 {
		return ErrNoInterface
	}
	nic := ifaces[0].NIC()
	mac := p.cfg.MAC
	if mac.IsZero() {
		mac = nic.PrimaryMAC()
		p.sharedMAC = true
	}
	vif, err := st.AddInterface("vif:"+p.name, p.cfg.IP, mac, nic, true)
	if err != nil {
		return err
	}
	p.vif = vif
	if tr := trace.FromEngine(p.kern.Engine()); tr.Enabled() {
		tr.Instant(p.kern.Name(), "zap", "vif.attach",
			trace.Str("pod", p.name), trace.Str("ip", p.cfg.IP.String()))
	}
	return nil
}

// Name returns the pod's name.
func (p *Pod) Name() string { return p.name }

// Kernel returns the node the pod currently lives on.
func (p *Pod) Kernel() *kernel.Kernel { return p.kern }

// IP returns the pod's network address.
func (p *Pod) IP() tcpip.Addr { return p.cfg.IP }

// VIF returns the pod's virtual interface.
func (p *Pod) VIF() *tcpip.Interface { return p.vif }

// Config returns the pod's network configuration.
func (p *Pod) Config() NetConfig { return p.cfg }

// SharedMAC reports whether the VIF shares the physical NIC's MAC (the
// no-multi-MAC fallback mode).
func (p *Pod) SharedMAC() bool { return p.sharedMAC }

// FakeMAC returns the MAC the pod's processes observe via SIOCGIFHWADDR.
func (p *Pod) FakeMAC() ether.MAC {
	if !p.cfg.FakeMAC.IsZero() {
		return p.cfg.FakeMAC
	}
	if !p.cfg.MAC.IsZero() {
		return p.cfg.MAC
	}
	return p.vif.MAC
}

// Spawn starts a program inside the pod, returning its virtual pid.
func (p *Pod) Spawn(name string, prog kernel.Program) (int, error) {
	if p.destroyed {
		return 0, ErrPodDead
	}
	if p.stopped {
		return 0, ErrPodStopped
	}
	proc := p.kern.Spawn(name, prog, 0)
	return p.adopt(proc), nil
}

// SpawnAt starts a program under an explicit virtual pid — the restore
// path. The kernel assigns whatever physical pid is free; the preserved
// vpid is what the application observes, which is how Zap restarts
// applications even when their former pids are taken by other processes.
func (p *Pod) SpawnAt(name string, prog kernel.Program, vpid int) (*kernel.Process, error) {
	if p.destroyed {
		return nil, ErrPodDead
	}
	if _, taken := p.procs[vpid]; taken {
		return nil, fmt.Errorf("zap: vpid %d already in use in pod %s", vpid, p.name)
	}
	proc := p.kern.Spawn(name, prog, 0)
	p.adoptAt(proc, vpid)
	return proc, nil
}

// adopt registers a process in the pod's namespace with a fresh vpid.
func (p *Pod) adopt(proc *kernel.Process) int {
	vpid := p.nextVPID
	p.nextVPID++
	p.adoptAt(proc, vpid)
	return vpid
}

// adoptAt registers a process under a specific vpid (restore path — this
// is precisely how Zap restarts processes whose pids are taken: the vpid
// is preserved, the physical pid is whatever the kernel hands out).
func (p *Pod) adoptAt(proc *kernel.Process, vpid int) {
	p.procs[vpid] = proc
	p.vpids[proc.PID()] = vpid
	if vpid >= p.nextVPID {
		p.nextVPID = vpid + 1
	}
	proc.SetInterposer(&p.interposer)
	proc.SetOnExit(func(int) {
		delete(p.procs, vpid)
		delete(p.vpids, proc.PID())
	})
}

// Process returns the pod process with the given virtual pid, or nil.
func (p *Pod) Process(vpid int) *kernel.Process { return p.procs[vpid] }

// VPIDs returns the pod's live virtual pids in ascending order.
func (p *Pod) VPIDs() []int {
	out := make([]int, 0, len(p.procs))
	for v := 1; v < p.nextVPID; v++ {
		if _, ok := p.procs[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// DirtyPages returns the total number of pages dirtied across the pod's
// processes since their dirty tracking was last cleared. The pre-copy
// policy reads it between rounds to decide whether another live round is
// worth taking or the residual is small enough to stop-and-copy.
func (p *Pod) DirtyPages() int {
	n := 0
	for _, vpid := range p.VPIDs() {
		n += p.procs[vpid].Mem().DirtyPages()
	}
	return n
}

// ResidentPages returns the total materialized pages across the pod's
// processes — the size of a full (round-0) pre-copy transfer.
func (p *Pod) ResidentPages() int {
	n := 0
	for _, vpid := range p.VPIDs() {
		n += p.procs[vpid].Mem().ResidentPages()
	}
	return n
}

// NextVPID exposes the namespace high-water mark (checkpointed so vpids
// never collide across restarts).
func (p *Pod) NextVPID() int { return p.nextVPID }

// SetNextVPID restores the namespace high-water mark.
func (p *Pod) SetNextVPID(v int) {
	if v > p.nextVPID {
		p.nextVPID = v
	}
}

// Kill delivers a signal to a pod process by virtual pid.
func (p *Pod) Kill(vpid int, sig kernel.Signal) error {
	proc, ok := p.procs[vpid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchVPID, vpid)
	}
	return p.kern.Signal(proc.PID(), sig)
}

// Stop sends SIGSTOP to every pod process and invokes done once all of
// them have actually quiesced (a step may still be finishing when the
// signal lands). This is the first action of a local checkpoint.
func (p *Pod) Stop(done func()) {
	if p.stopped {
		if done != nil {
			done()
		}
		return
	}
	p.stopped = true
	var sp trace.Span
	if tr := trace.FromEngine(p.kern.Engine()); tr.Enabled() {
		sp = tr.Begin(p.kern.Name(), "zap", "pod.stop", trace.Str("pod", p.name))
	}
	remaining := 0
	check := func() {
		if remaining == 0 {
			sp.End()
			if done != nil {
				done()
				done = nil
			}
		}
	}
	// Iterate in vpid order: p.procs is a map, and signal order must not
	// depend on map iteration (the tracer records it).
	for _, vpid := range p.VPIDs() {
		proc := p.procs[vpid]
		if proc.Stopped() || proc.State() == kernel.StateExited {
			continue
		}
		remaining++
		proc.SetOnStopped(func() {
			proc.SetOnStopped(nil)
			remaining--
			check()
		})
		p.kern.Signal(proc.PID(), kernel.SIGSTOP) //cruzvet:allow errdrop pid verified live in this same event; Signal only fails for unknown pids
	}
	check()
}

// Resume sends SIGCONT to every pod process.
func (p *Pod) Resume() {
	if !p.stopped {
		return
	}
	p.stopped = false
	if tr := trace.FromEngine(p.kern.Engine()); tr.Enabled() {
		tr.Instant(p.kern.Name(), "zap", "pod.resume", trace.Str("pod", p.name))
	}
	for _, vpid := range p.VPIDs() {
		p.kern.Signal(p.procs[vpid].PID(), kernel.SIGCONT) //cruzvet:allow errdrop SIGCONT to a proc that exited before the stop is a harmless no-op
	}
}

// Stopped reports whether the pod is stopped.
func (p *Pod) Stopped() bool { return p.stopped }

// TrackShm marks a kernel shm segment as belonging to this pod.
func (p *Pod) TrackShm(id int) { p.shmIDs[id] = true }

// TrackSem marks a kernel semaphore as belonging to this pod.
func (p *Pod) TrackSem(id int) { p.semIDs[id] = true }

// ShmIDs returns the pod's shared-memory segment ids in ascending order.
func (p *Pod) ShmIDs() []int { return sortedKeys(p.shmIDs) }

// SemIDs returns the pod's semaphore ids in ascending order.
func (p *Pod) SemIDs() []int { return sortedKeys(p.semIDs) }

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Destroy kills all pod processes silently, destroys their sockets
// without notifying peers (their state lives on in a checkpoint image, if
// one was taken), removes the pod's IPC objects, and deletes the VIF.
// After a migration this runs on the source node.
func (p *Pod) Destroy() {
	if p.destroyed {
		return
	}
	p.destroyed = true
	if tr := trace.FromEngine(p.kern.Engine()); tr.Enabled() {
		tr.Instant(p.kern.Name(), "zap", "pod.destroy", trace.Str("pod", p.name))
	}
	for _, vpid := range p.VPIDs() {
		proc := p.procs[vpid]
		// Destroy sockets first so closing fds at exit cannot emit FINs
		// from a pod that must disappear silently. fd order, like vpid
		// order above, is fixed so the trace is reproducible.
		fds := proc.FDs()
		nums := make([]int, 0, len(fds))
		for n := range fds {
			nums = append(nums, n)
		}
		for i := 1; i < len(nums); i++ {
			for j := i; j > 0 && nums[j] < nums[j-1]; j-- {
				nums[j], nums[j-1] = nums[j-1], nums[j]
			}
		}
		for _, n := range nums {
			fd := fds[n]
			switch fd.Kind() {
			case kernel.FDConn:
				fd.Conn().Destroy()
			case kernel.FDListener:
				fd.Listener().Close()
			case kernel.FDUDP:
				fd.UDP().Close()
			}
		}
		p.kern.Signal(proc.PID(), kernel.SIGKILL) //cruzvet:allow errdrop destroy path; SIGKILL to an already-exited proc is the intended no-op
	}
	for _, id := range p.ShmIDs() {
		p.kern.RemoveShm(id)
	}
	for _, id := range p.SemIDs() {
		p.kern.RemoveSem(id)
	}
	if p.vif != nil {
		p.kern.Stack().RemoveInterface(p.vif) //cruzvet:allow errdrop vif was registered at pod creation and removed exactly once under the destroyed guard
		p.vif = nil
	}
}

// Destroyed reports whether Destroy ran.
func (p *Pod) Destroyed() bool { return p.destroyed }

// AnnounceLocation broadcasts a gratuitous ARP for the pod's address,
// updating the switch and remote peers after a migration.
func (p *Pod) AnnounceLocation() {
	if p.vif != nil {
		p.kern.Stack().AnnounceGratuitousARP(p.vif)
	}
}

// podInterposer implements kernel.Interposer for one pod.
type podInterposer struct {
	pod *Pod
}

func (i *podInterposer) RewriteBind(req tcpip.AddrPort) tcpip.AddrPort {
	// "checks if the calling process is in a pod, and if so replaces the
	// network address argument with the IP address of the pod's VIF."
	req.Addr = i.pod.cfg.IP
	return req
}

func (i *podInterposer) RewriteConnectLocal() tcpip.Addr {
	// "The wrapper ensures that sockets in a pod are bound to the pod's
	// IP address on a free port."
	return i.pod.cfg.IP
}

func (i *podInterposer) HWAddr(string, ether.MAC) ether.MAC {
	// SIOCGIFHWADDR interception: the pod's (fake) MAC, stable across
	// migration.
	return i.pod.FakeMAC()
}

func (i *podInterposer) VirtualPID(real int) int {
	if v, ok := i.pod.vpids[real]; ok {
		return v
	}
	return real
}

func (i *podInterposer) TranslatePID(virtual int) (int, bool) {
	if proc, ok := i.pod.procs[virtual]; ok {
		return proc.PID(), true
	}
	return 0, false
}

func (i *podInterposer) SyscallOverhead() sim.Duration {
	return DefaultInterpositionCost
}

func (i *podInterposer) ChildSpawned(child *kernel.Process) {
	i.pod.adopt(child)
}
