package zap

import (
	"errors"
	"testing"

	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

type testRig struct {
	t       *testing.T
	engine  *sim.Engine
	sw      *ether.Switch
	kernels []*kernel.Kernel
	nics    []*ether.NIC
}

func newTestRig(t *testing.T, nodes int) *testRig {
	t.Helper()
	r := &testRig{t: t, engine: sim.NewEngine(11)}
	r.sw = ether.NewSwitch(r.engine)
	for i := 0; i < nodes; i++ {
		mac := ether.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		nic := ether.NewNIC(r.engine, "eth0", mac)
		r.sw.Attach(nic, ether.GigabitLink)
		st := tcpip.NewStack(r.engine, "node")
		if _, err := st.AddInterface("eth0", tcpip.Addr{10, 0, 0, byte(i + 1)}, mac, nic, false); err != nil {
			t.Fatal(err)
		}
		r.kernels = append(r.kernels, kernel.New(r.engine, "node", kernel.DefaultParams(), st))
		r.nics = append(r.nics, nic)
	}
	return r
}

func (r *testRig) run(d sim.Duration) {
	r.t.Helper()
	if err := r.engine.RunFor(d); err != nil {
		r.t.Fatal(err)
	}
}

func podIP(i int) tcpip.Addr { return tcpip.Addr{10, 0, 1, byte(i + 1)} }
func podMAC(i int) ether.MAC { return ether.MAC{2, 0, 0, 1, 0, byte(i + 1)} }

// pidProg records the pid the process observes.
type pidProg struct {
	Seen int
}

func (p *pidProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	p.Seen = ctx.PID()
	return kernel.Exit(0, 0)
}

// spinProg runs forever.
type spinProg struct{ Count int }

func (p *spinProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	p.Count++
	return kernel.Continue(sim.Millisecond)
}

// bindProg listens on a wildcard address and records where it landed.
// With Hold set it keeps the socket open forever.
type bindProg struct {
	Got  tcpip.AddrPort
	Hold bool
	done bool
}

func (p *bindProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	if !p.done {
		fd, err := ctx.Listen(tcpip.AddrPort{Port: 80}, 4)
		if err != nil {
			return kernel.Exit(0, 1)
		}
		p.Got, _ = ctx.LocalAddr(fd)
		p.done = true
	}
	if p.Hold {
		return kernel.Sleep(0, sim.Second)
	}
	return kernel.Exit(0, 0)
}

// hwaddrProg records the MAC SIOCGIFHWADDR reports.
type hwaddrProg struct {
	Got ether.MAC
}

func (p *hwaddrProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	m, err := ctx.HWAddr("eth0")
	if err != nil {
		return kernel.Exit(0, 1)
	}
	p.Got = m
	return kernel.Exit(0, 0)
}

// forkerProg spawns a child and records both observed pids.
type forkerProg struct {
	Child *pidProg
	MyPID int
	phase int
}

func (p *forkerProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch p.phase {
	case 0:
		p.MyPID = ctx.PID()
		if _, _, err := ctx.Spawn("child", p.Child); err != nil {
			return kernel.Exit(0, 1)
		}
		p.phase = 1
		return kernel.Continue(0)
	default:
		if _, err := ctx.WaitChild(); err == kernel.ErrWouldBlock {
			return kernel.WaitForChild(0)
		}
		return kernel.Exit(0, 0)
	}
}

func TestVirtualPIDs(t *testing.T) {
	r := newTestRig(t, 1)
	pod, err := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	if err != nil {
		t.Fatal(err)
	}
	// Burn some kernel pids so physical and virtual diverge.
	for i := 0; i < 5; i++ {
		r.kernels[0].Spawn("filler", &pidProg{}, 0)
	}
	r.run(sim.Millisecond)

	prog := &pidProg{}
	vpid, err := pod.Spawn("inpod", prog)
	if err != nil {
		t.Fatal(err)
	}
	r.run(10 * sim.Millisecond)
	if prog.Seen != vpid {
		t.Fatalf("process saw pid %d, want virtual pid %d", prog.Seen, vpid)
	}
	if vpid != 1 {
		t.Fatalf("first pod vpid = %d, want 1", vpid)
	}
}

func TestChildrenAdoptedIntoNamespace(t *testing.T) {
	r := newTestRig(t, 1)
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	child := &pidProg{}
	forker := &forkerProg{Child: child}
	if _, err := pod.Spawn("forker", forker); err != nil {
		t.Fatal(err)
	}
	r.run(50 * sim.Millisecond)
	if forker.MyPID != 1 || child.Seen != 2 {
		t.Fatalf("vpids = parent %d child %d, want 1 and 2", forker.MyPID, child.Seen)
	}
}

func TestBindInterposedToPodVIF(t *testing.T) {
	r := newTestRig(t, 1)
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	prog := &bindProg{Hold: true}
	pod.Spawn("binder", prog)
	r.run(10 * sim.Millisecond)
	if prog.Got.Addr != podIP(0) {
		t.Fatalf("wildcard bind landed on %v, want pod IP %v", prog.Got, podIP(0))
	}
	// A native process binds the true wildcard — but port 80 is taken by
	// the pod's listener, so the wildcard bind must fail (exit code 1);
	// this is exactly the contention restarted applications hit on
	// systems without pod virtualization.
	native := &bindProg{}
	np := r.kernels[0].Spawn("native", native, 0)
	r.run(10 * sim.Millisecond)
	if np.ExitCode() != 1 {
		t.Fatalf("native wildcard bind on occupied port: exit=%d addr=%v", np.ExitCode(), native.Got)
	}
}

func TestHWAddrInterposedToFakeMAC(t *testing.T) {
	r := newTestRig(t, 1)
	fakeMAC := ether.MAC{0xAA, 0xBB, 0xCC, 0, 0, 1}
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), FakeMAC: fakeMAC})
	prog := &hwaddrProg{}
	pod.Spawn("hw", prog)
	r.run(10 * sim.Millisecond)
	if prog.Got != fakeMAC {
		t.Fatalf("pod saw MAC %v, want fake %v", prog.Got, fakeMAC)
	}
	// Shared-MAC mode: the VIF uses the physical NIC's MAC.
	if !pod.SharedMAC() {
		t.Fatal("zero MAC config should share the physical MAC")
	}
	if pod.VIF().MAC != r.nics[0].PrimaryMAC() {
		t.Fatal("VIF not sharing physical MAC")
	}
}

func TestStopQuiescesAllProcesses(t *testing.T) {
	r := newTestRig(t, 1)
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	progs := []*spinProg{{}, {}, {}}
	for i, pr := range progs {
		if _, err := pod.Spawn("spin", pr); err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
	}
	r.run(20 * sim.Millisecond)
	var stoppedAt sim.Time
	pod.Stop(func() { stoppedAt = r.engine.Now() })
	r.run(10 * sim.Millisecond)
	if stoppedAt == 0 {
		t.Fatal("Stop callback never fired")
	}
	counts := []int{progs[0].Count, progs[1].Count, progs[2].Count}
	r.run(sim.Second)
	for i, pr := range progs {
		if pr.Count != counts[i] {
			t.Fatalf("process %d ran while pod stopped", i)
		}
	}
	if _, err := pod.Spawn("late", &spinProg{}); !errors.Is(err, ErrPodStopped) {
		t.Fatalf("spawn into stopped pod = %v", err)
	}
	pod.Resume()
	r.run(100 * sim.Millisecond)
	for i, pr := range progs {
		if pr.Count <= counts[i] {
			t.Fatalf("process %d did not resume", i)
		}
	}
}

func TestStopAlreadyStoppedFiresImmediately(t *testing.T) {
	r := newTestRig(t, 1)
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	pod.Spawn("spin", &spinProg{})
	r.run(10 * sim.Millisecond)
	pod.Stop(nil)
	r.run(10 * sim.Millisecond)
	fired := false
	pod.Stop(func() { fired = true })
	if !fired {
		t.Fatal("second Stop should complete synchronously")
	}
}

func TestDestroyRemovesEverything(t *testing.T) {
	r := newTestRig(t, 2)
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	pod.Spawn("spin", &spinProg{})
	r.run(10 * sim.Millisecond)
	if got := len(pod.VPIDs()); got != 1 {
		t.Fatalf("vpids = %d", got)
	}
	pod.Destroy()
	r.run(10 * sim.Millisecond)
	if len(r.kernels[0].Processes()) != 0 {
		t.Fatal("pod processes survived Destroy")
	}
	if r.kernels[0].Stack().InterfaceByName("vif:p1") != nil {
		t.Fatal("VIF survived Destroy")
	}
	if _, err := pod.Spawn("x", &spinProg{}); !errors.Is(err, ErrPodDead) {
		t.Fatalf("spawn into destroyed pod = %v", err)
	}
}

func TestPodKillByVPID(t *testing.T) {
	r := newTestRig(t, 1)
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	vpid, _ := pod.Spawn("spin", &spinProg{})
	r.run(10 * sim.Millisecond)
	if err := pod.Kill(vpid, kernel.SIGKILL); err != nil {
		t.Fatal(err)
	}
	r.run(10 * sim.Millisecond)
	if pod.Process(vpid) != nil {
		t.Fatal("killed process still in pod namespace")
	}
	if err := pod.Kill(99, kernel.SIGKILL); !errors.Is(err, ErrNoSuchVPID) {
		t.Fatalf("kill bad vpid = %v", err)
	}
}

func TestTwoPodsIsolatedNamespaces(t *testing.T) {
	r := newTestRig(t, 1)
	podA, _ := New(r.kernels[0], "a", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	podB, err := New(r.kernels[0], "b", NetConfig{IP: podIP(1), MAC: podMAC(1)})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := &pidProg{}, &pidProg{}
	podA.Spawn("a1", pa)
	podB.Spawn("b1", pb)
	r.run(10 * sim.Millisecond)
	// Both see vpid 1 despite distinct kernel pids.
	if pa.Seen != 1 || pb.Seen != 1 {
		t.Fatalf("vpids = %d, %d; want 1, 1", pa.Seen, pb.Seen)
	}
	// Duplicate IP rejected.
	if _, err := New(r.kernels[0], "c", NetConfig{IP: podIP(0), MAC: podMAC(2)}); err == nil {
		t.Fatal("duplicate pod IP accepted")
	}
}

func TestInterposerAddsSyscallOverhead(t *testing.T) {
	r := newTestRig(t, 1)
	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	inPod := &pidProg{}
	pod.Spawn("in", inPod)
	r.run(10 * sim.Millisecond)
	podProcTime := r.kernels[0].Stats.ContextTime

	r2 := newTestRig(t, 1)
	r2.kernels[0].Spawn("native", &pidProg{}, 0)
	r2.run(10 * sim.Millisecond)
	nativeTime := r2.kernels[0].Stats.ContextTime

	if podProcTime <= nativeTime {
		t.Fatalf("pod CPU %v not greater than native %v", podProcTime, nativeTime)
	}
	if diff := podProcTime - nativeTime; diff != DefaultInterpositionCost {
		t.Fatalf("overhead = %v, want %v (one syscall)", diff, DefaultInterpositionCost)
	}
}

// killerProg kills a target vpid, then tries a pid outside the pod.
type killerProg struct {
	TargetVPID int
	OutsidePID int
	KillErr    string
	OutsideErr string
	done       bool
}

func (p *killerProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	if p.done {
		return kernel.Exit(0, 0)
	}
	p.done = true
	if err := ctx.Kill(p.TargetVPID, kernel.SIGKILL); err != nil {
		p.KillErr = err.Error()
	}
	if err := ctx.Kill(p.OutsidePID, kernel.SIGKILL); err != nil {
		p.OutsideErr = err.Error()
	}
	return kernel.Continue(0)
}

func TestInPodKillUsesVirtualPIDsAndIsolates(t *testing.T) {
	r := newTestRig(t, 1)
	// A native process whose physical pid the pod process will try to
	// kill — pod isolation must refuse, even though the pid exists.
	native := r.kernels[0].Spawn("native", &spinProg{}, 0)

	pod, _ := New(r.kernels[0], "p1", NetConfig{IP: podIP(0), MAC: podMAC(0)})
	victim := &spinProg{}
	victimVPID, _ := pod.Spawn("victim", victim)
	// Note: the native process's physical pid (1) coincides with the
	// victim's virtual pid — precisely the aliasing Zap's namespace
	// resolves in the pod's favour: pid arguments inside a pod are
	// always virtual, so native processes are unreachable by any number.
	killer := &killerProg{TargetVPID: victimVPID, OutsidePID: 99}
	pod.Spawn("killer", killer)
	r.run(50 * sim.Millisecond)

	if killer.KillErr != "" {
		t.Fatalf("in-pod kill failed: %s", killer.KillErr)
	}
	if pod.Process(victimVPID) != nil {
		t.Fatal("victim survived in-pod SIGKILL")
	}
	if killer.OutsideErr == "" {
		t.Fatal("kill of nonexistent vpid succeeded")
	}
	if native.State() == kernel.StateExited {
		t.Fatal("native process was killed through the pod boundary")
	}
}
