package ctl

import (
	"testing"

	"cruz/internal/sim"
)

// BenchmarkMigrationStream models a migration's bulk control-plane
// traffic: a stream of large (megabyte-class) frames — pre-copy rounds —
// interleaved with small control frames, framed over simulated gigabit
// TCP. The allocs/op figure is the headline for the two-tier frame pool:
// before the bulk tier, every frame above framePoolBufCap allocated its
// full size.
func BenchmarkMigrationStream(b *testing.B) {
	const rounds = 8
	bulk := make([]byte, 1<<20)
	ctrl := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := newRig(b)
		rcvd := 0
		NewConn(r.b, func(_ *Conn, payload []byte) { rcvd += len(payload) }, nil)
		ca := NewConn(r.a, func(*Conn, []byte) {}, nil)
		b.StartTimer()

		want := 0
		for round := 0; round < rounds; round++ {
			// Successive rounds shrink, like a converging dirty set.
			frame := bulk[:len(bulk)>>uint(round)]
			if err := ca.Send(frame); err != nil {
				b.Fatal(err)
			}
			if err := ca.Send(ctrl); err != nil {
				b.Fatal(err)
			}
			want += len(frame) + len(ctrl)
			r.engine.RunFor(50 * sim.Millisecond)
		}
		if rcvd != want {
			b.Fatalf("received %d of %d bytes", rcvd, want)
		}
		if ca.Pool.Hits == 0 {
			b.Fatal("frame pool never hit on a repetitive bulk stream")
		}
	}
}
