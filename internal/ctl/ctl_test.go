package ctl

import (
	"bytes"
	"testing"

	"cruz/internal/ether"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

type rig struct {
	t      testing.TB
	engine *sim.Engine
	a, b   *tcpip.TCPConn
}

func newRig(t testing.TB) *rig {
	t.Helper()
	r := &rig{t: t, engine: sim.NewEngine(5)}
	sw := ether.NewSwitch(r.engine)
	mk := func(i int) *tcpip.Stack {
		mac := ether.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		nic := ether.NewNIC(r.engine, "eth0", mac)
		sw.Attach(nic, ether.GigabitLink)
		st := tcpip.NewStack(r.engine, "n")
		if _, err := st.AddInterface("eth0", tcpip.Addr{10, 0, 0, byte(i + 1)}, mac, nic, false); err != nil {
			t.Fatal(err)
		}
		return st
	}
	sa, sb := mk(0), mk(1)
	l, err := sb.ListenTCP(tcpip.AddrPort{Addr: tcpip.Addr{10, 0, 0, 2}, Port: 99}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.a, err = sa.DialTCP(tcpip.AddrPort{}, tcpip.AddrPort{Addr: tcpip.Addr{10, 0, 0, 2}, Port: 99})
	if err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(50 * sim.Millisecond)
	r.b, err = l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFrameRoundTrip(t *testing.T) {
	r := newRig(t)
	var got [][]byte
	NewConn(r.b, func(_ *Conn, payload []byte) {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		got = append(got, cp)
	}, nil)
	ca := NewConn(r.a, func(*Conn, []byte) {}, nil)

	msgs := [][]byte{[]byte("one"), {}, []byte("three-three-three"), bytes.Repeat([]byte{7}, 9000)}
	for _, m := range msgs {
		if err := ca.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	r.engine.RunFor(100 * sim.Millisecond)
	if len(got) != len(msgs) {
		t.Fatalf("received %d frames, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("frame %d mismatch: %d vs %d bytes", i, len(got[i]), len(msgs[i]))
		}
	}
	if ca.Sent != len(msgs) {
		t.Fatalf("Sent = %d", ca.Sent)
	}
}

func TestQueueBeforeEstablishment(t *testing.T) {
	// Frames sent on a connection still in SYN_SENT must be queued and
	// flushed after the handshake — the bug class that silently loses
	// protocol messages.
	engine := sim.NewEngine(9)
	sw := ether.NewSwitch(engine)
	mk := func(i int) *tcpip.Stack {
		mac := ether.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		nic := ether.NewNIC(engine, "eth0", mac)
		sw.Attach(nic, ether.GigabitLink)
		st := tcpip.NewStack(engine, "n")
		st.AddInterface("eth0", tcpip.Addr{10, 0, 0, byte(i + 1)}, mac, nic, false)
		return st
	}
	sa, sb := mk(0), mk(1)
	l, _ := sb.ListenTCP(tcpip.AddrPort{Addr: tcpip.Addr{10, 0, 0, 2}, Port: 99}, 4)
	var got int
	l.SetNotify(func() {
		if tc, err := l.Accept(); err == nil {
			NewConn(tc, func(_ *Conn, p []byte) { got++ }, nil)
		}
	})
	tc, err := sa.DialTCP(tcpip.AddrPort{}, tcpip.AddrPort{Addr: tcpip.Addr{10, 0, 0, 2}, Port: 99})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(tc, func(*Conn, []byte) {}, nil)
	// Send immediately — handshake has not even left the NIC yet.
	if err := c.Send([]byte("early-1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("early-2")); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(100 * sim.Millisecond)
	if got != 2 {
		t.Fatalf("delivered %d early frames, want 2", got)
	}
}

func TestBulkSendBackpressure(t *testing.T) {
	// A frame several times the TCP send buffer (64 KB) must queue and
	// drain as acknowledgments open window space — the path checkpoint
	// replication streams bulk data through. The old behavior treated a
	// full buffer as a protocol failure ("short write").
	r := newRig(t)
	var got [][]byte
	NewConn(r.b, func(_ *Conn, payload []byte) {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		got = append(got, cp)
	}, nil)
	ca := NewConn(r.a, func(*Conn, []byte) {}, nil)

	bulk := bytes.Repeat([]byte{0xAB}, 300<<10)
	msgs := [][]byte{bulk, []byte("after-1"), bytes.Repeat([]byte{0xCD}, 100<<10), []byte("after-2")}
	for _, m := range msgs {
		if err := ca.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if ca.Blocked == 0 {
		t.Fatal("bulk send never hit backpressure — test is not exercising the queue")
	}
	r.engine.RunFor(2 * sim.Second)
	if len(got) != len(msgs) {
		t.Fatalf("received %d frames, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("frame %d mismatch: %d vs %d bytes", i, len(got[i]), len(msgs[i]))
		}
	}
	if ca.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %d bytes left", ca.QueuedBytes())
	}
}

func TestSendOnDeadConn(t *testing.T) {
	r := newRig(t)
	ca := NewConn(r.a, func(*Conn, []byte) {}, nil)
	r.a.Abort()
	if err := ca.Send([]byte("x")); err == nil {
		t.Fatal("send on aborted conn succeeded")
	}
}

func TestErrCallbackOnPeerReset(t *testing.T) {
	r := newRig(t)
	var gotErr error
	NewConn(r.b, func(*Conn, []byte) {}, func(_ *Conn, err error) { gotErr = err })
	r.a.Abort()
	r.engine.RunFor(50 * sim.Millisecond)
	if gotErr == nil {
		t.Fatal("error callback never fired after peer reset")
	}
}

func TestSerializerOrdersAndSpacesWork(t *testing.T) {
	engine := sim.NewEngine(3)
	s := Serializer{Engine: engine}
	var at []sim.Time
	for i := 0; i < 3; i++ {
		s.Do(10*sim.Microsecond, func() { at = append(at, engine.Now()) })
	}
	engine.Run()
	if len(at) != 3 {
		t.Fatalf("ran %d items", len(at))
	}
	for i, want := range []sim.Time{10000, 20000, 30000} {
		if at[i] != want {
			t.Fatalf("item %d at %v, want %v", i, at[i], want)
		}
	}
	// Work queued later starts after the backlog drains.
	s.Do(5*sim.Microsecond, func() { at = append(at, engine.Now()) })
	engine.Run()
	if at[3] != 35000 {
		t.Fatalf("late item at %v, want 35µs", at[3])
	}
}

// TestFrameCtxRoundTrip: the trace context stamped on a frame by SendCtx
// must surface through FrameCtx on the receiver, per frame, and frames
// sent with plain Send must surface the zero context.
func TestFrameCtxRoundTrip(t *testing.T) {
	r := newRig(t)
	type rx struct {
		payload string
		ctx     trace.SpanContext
	}
	var got []rx
	NewConn(r.b, func(c *Conn, payload []byte) {
		got = append(got, rx{payload: string(payload), ctx: c.FrameCtx()})
	}, nil)
	ca := NewConn(r.a, func(*Conn, []byte) {}, nil)

	want := []rx{
		{"alpha", trace.SpanContext{Op: 7, Span: 42}},
		{"beta", trace.SpanContext{}},
		{"gamma", trace.SpanContext{Op: 1, Span: 0xdeadbeef}},
	}
	for _, m := range want {
		var err error
		if m.ctx.Zero() {
			err = ca.Send([]byte(m.payload))
		} else {
			err = ca.SendCtx([]byte(m.payload), m.ctx)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	r.engine.RunFor(100 * sim.Millisecond)
	if len(got) != len(want) {
		t.Fatalf("received %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
