package ctl

import (
	"errors"
	"sort"

	"cruz/internal/sim"
	"cruz/internal/trace"
)

// ErrOpExists is returned by Table.Begin when the key is busy.
var ErrOpExists = errors.New("ctl: an operation is already in progress for this key")

// Table is the shared op-lifecycle state machine used by the coordinator
// and the agents. Every distributed operation — checkpoint, restart,
// replication, recovery — is one Op in a Table: created with Begin,
// tracked under a unique key, guarded by an optional timeout (with
// retries), advanced by named wait-sets, and torn down exactly once
// through Fail or Finish. Keeping this machinery in one place means the
// daemons carry only their domain logic (what to send, what to roll
// back), not their own per-op maps and abort plumbing.
type Table struct {
	engine *sim.Engine
	ops    map[string]*Op
}

// NewTable creates an empty op table on the given engine.
func NewTable(engine *sim.Engine) *Table {
	return &Table{engine: engine, ops: make(map[string]*Op)}
}

// Begin registers a new op under key, or fails with ErrOpExists if the
// key is busy. Kind is a label ("checkpoint", "replicate", ...) carried
// for dispatch and diagnostics.
func (t *Table) Begin(kind, key string, seq int) (*Op, error) {
	if _, busy := t.ops[key]; busy {
		return nil, ErrOpExists
	}
	op := &Op{
		Kind:  kind,
		Key:   key,
		Seq:   seq,
		table: t,
		t0:    t.engine.Now(),
	}
	t.ops[key] = op
	return op, nil
}

// Get returns the active op under key, or nil.
func (t *Table) Get(key string) *Op { return t.ops[key] }

// Len returns the number of active ops (the leak check for abort paths).
func (t *Table) Len() int { return len(t.ops) }

// Each visits active ops in sorted key order — deterministic regardless
// of map iteration order, which matters because visitors send messages.
func (t *Table) Each(fn func(*Op)) {
	keys := make([]string, 0, len(t.ops))
	for k := range t.ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if op, ok := t.ops[k]; ok {
			fn(op)
		}
	}
}

// Op is one in-flight distributed operation.
type Op struct {
	// Kind labels the operation; Key is its table identity; Seq the
	// checkpoint sequence it concerns (0 when not applicable).
	Kind string
	Key  string
	Seq  int
	// Data points back at the owner's per-op record (measurements,
	// domain state). The table never inspects it.
	Data any

	table      *Table
	t0         sim.Time
	timeout    *sim.Event
	timeoutDur sim.Duration
	timeoutErr error
	retries    int
	onRetry    func(*Op)
	err        error
	done       bool
	waits      map[string]map[string]bool
	onFail     func(*Op, error)
	onFinish   func(*Op, error)
}

// Started returns when the op was begun.
func (o *Op) Started() sim.Time { return o.t0 }

// Active reports whether the op has neither finished nor failed.
func (o *Op) Active() bool { return !o.done }

// Err returns the failure, if any.
func (o *Op) Err() error { return o.err }

// Aborted reports whether the op failed. Async continuations (disk
// completions, CPU slots) must check it before touching op state.
func (o *Op) Aborted() bool { return o.err != nil }

// OnFail installs the rollback/fan-out hook, invoked exactly once if the
// op fails, before OnFinish.
func (o *Op) OnFail(fn func(*Op, error)) { o.onFail = fn }

// OnFinish installs the completion hook, invoked exactly once when the
// op ends — err nil on success, the failure otherwise.
func (o *Op) OnFinish(fn func(*Op, error)) { o.onFinish = fn }

// ArmTimeout fails the op with err if it is still active after d
// (d <= 0 disables). Re-arming replaces the previous timer.
func (o *Op) ArmTimeout(d sim.Duration, err error) { o.ArmRetries(d, 0, nil, err) }

// ArmRetries is ArmTimeout with retries: each expiry first invokes retry
// and re-arms, up to retries times, before the final expiry fails the op.
func (o *Op) ArmRetries(d sim.Duration, retries int, retry func(*Op), err error) {
	o.cancelTimeout()
	if d <= 0 || o.done {
		return
	}
	o.timeoutDur, o.retries, o.onRetry, o.timeoutErr = d, retries, retry, err
	o.armTimer()
}

func (o *Op) armTimer() {
	o.timeout = o.table.engine.Schedule(o.timeoutDur, func() {
		o.timeout = nil // fired: the engine recycles it
		if o.done {
			return
		}
		if o.retries > 0 && o.onRetry != nil {
			o.retries--
			o.onRetry(o)
			if !o.done {
				o.armTimer()
			}
			return
		}
		o.Fail(o.timeoutErr)
	})
}

func (o *Op) cancelTimeout() {
	if o.timeout != nil {
		o.table.engine.Cancel(o.timeout)
		o.timeout = nil
	}
}

// Expect adds member to the named wait-set (the barrier of replies the
// op is waiting on).
func (o *Op) Expect(set, member string) {
	if o.waits == nil {
		o.waits = make(map[string]map[string]bool)
	}
	if o.waits[set] == nil {
		o.waits[set] = make(map[string]bool)
	}
	o.waits[set][member] = true
}

// Arrive removes member from the named wait-set, reporting whether it
// was actually outstanding (false filters duplicate or stray replies).
func (o *Op) Arrive(set, member string) bool {
	if !o.waits[set][member] {
		return false
	}
	delete(o.waits[set], member)
	return true
}

// Cleared reports whether the named wait-set is empty.
func (o *Op) Cleared(set string) bool { return len(o.waits[set]) == 0 }

// Fail aborts the op: idempotent, invokes OnFail then OnFinish, cancels
// the timeout, and removes the op from the table. An op abort is a
// flight-recorder trigger — the dump preserves the event window that led
// up to it.
func (o *Op) Fail(err error) {
	if o.done || o.err != nil {
		return
	}
	o.err = err
	if tr := trace.FromEngine(o.table.engine); tr != nil {
		reason := o.Kind + "/" + o.Key
		if err != nil {
			reason += ": " + err.Error()
		}
		tr.DumpFlight("op.fail", reason)
	}
	if o.onFail != nil {
		o.onFail(o, err)
	}
	o.complete(err)
}

// Finish completes the op successfully (idempotent).
func (o *Op) Finish() { o.complete(nil) }

func (o *Op) complete(err error) {
	if o.done {
		return
	}
	o.done = true
	o.cancelTimeout()
	delete(o.table.ops, o.Key)
	if o.onFinish != nil {
		o.onFinish(o, err)
	}
}
