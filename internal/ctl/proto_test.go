package ctl

import (
	"errors"
	"testing"

	"cruz/internal/sim"
)

var errBoom = errors.New("boom")

func TestTableBeginBusyAndRelease(t *testing.T) {
	tb := NewTable(sim.NewEngine(1))
	op, err := tb.Begin("checkpoint", "job", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Begin("restart", "job", 2); !errors.Is(err, ErrOpExists) {
		t.Fatalf("duplicate begin: %v", err)
	}
	if tb.Len() != 1 || tb.Get("job") != op {
		t.Fatal("table bookkeeping wrong")
	}
	op.Finish()
	if tb.Len() != 0 || tb.Get("job") != nil {
		t.Fatal("finish did not release the key")
	}
	if _, err := tb.Begin("restart", "job", 2); err != nil {
		t.Fatalf("re-begin after finish: %v", err)
	}
}

func TestOpWaitSets(t *testing.T) {
	tb := NewTable(sim.NewEngine(1))
	op, _ := tb.Begin("checkpoint", "job", 1)
	op.Expect("done", "a")
	op.Expect("done", "b")
	op.Expect("cont", "a")
	if op.Cleared("done") {
		t.Fatal("done cleared while members outstanding")
	}
	if !op.Arrive("done", "a") {
		t.Fatal("expected member rejected")
	}
	if op.Arrive("done", "a") {
		t.Fatal("duplicate arrival accepted")
	}
	if op.Arrive("done", "zzz") {
		t.Fatal("stray arrival accepted")
	}
	if op.Cleared("done") {
		t.Fatal("done cleared early")
	}
	op.Arrive("done", "b")
	if !op.Cleared("done") || op.Cleared("cont") {
		t.Fatal("wait-set state wrong after arrivals")
	}
	if !op.Cleared("never-expected") {
		t.Fatal("unknown set should read as cleared")
	}
}

func TestOpFailIsIdempotentAndOrdersHooks(t *testing.T) {
	tb := NewTable(sim.NewEngine(1))
	op, _ := tb.Begin("checkpoint", "job", 1)
	var order []string
	op.OnFail(func(_ *Op, err error) { order = append(order, "fail:"+err.Error()) })
	op.OnFinish(func(_ *Op, err error) { order = append(order, "finish") })
	op.Fail(errBoom)
	op.Fail(errors.New("second"))
	op.Finish()
	if len(order) != 2 || order[0] != "fail:boom" || order[1] != "finish" {
		t.Fatalf("hook order = %v", order)
	}
	if !op.Aborted() || op.Active() || !errors.Is(op.Err(), errBoom) {
		t.Fatal("failed op state wrong")
	}
	if tb.Len() != 0 {
		t.Fatal("failed op leaked in table")
	}
}

func TestOpTimeoutFiresAndFinishCancels(t *testing.T) {
	e := sim.NewEngine(1)
	tb := NewTable(e)
	op, _ := tb.Begin("checkpoint", "job", 1)
	var failed error
	op.OnFinish(func(_ *Op, err error) { failed = err })
	op.ArmTimeout(10*sim.Millisecond, errBoom)
	e.RunFor(20 * sim.Millisecond)
	if !errors.Is(failed, errBoom) {
		t.Fatalf("timeout did not fail the op: %v", failed)
	}

	op2, _ := tb.Begin("checkpoint", "job2", 1)
	fired := false
	op2.OnFinish(func(_ *Op, err error) { fired = err != nil })
	op2.ArmTimeout(10*sim.Millisecond, errBoom)
	op2.Finish()
	e.RunFor(20 * sim.Millisecond)
	if fired {
		t.Fatal("timeout fired after Finish")
	}
}

func TestOpRetriesBeforeFailing(t *testing.T) {
	e := sim.NewEngine(1)
	tb := NewTable(e)
	op, _ := tb.Begin("replicate", "r", 1)
	retries := 0
	var failed error
	op.OnFinish(func(_ *Op, err error) { failed = err })
	op.ArmRetries(10*sim.Millisecond, 2, func(*Op) { retries++ }, errBoom)
	e.RunFor(25 * sim.Millisecond)
	if retries != 2 || failed != nil {
		t.Fatalf("after retry window: retries=%d failed=%v", retries, failed)
	}
	e.RunFor(10 * sim.Millisecond)
	if !errors.Is(failed, errBoom) {
		t.Fatalf("op did not fail after retries exhausted: %v", failed)
	}

	// A retry succeeding (op finished by a reply) stops the timer.
	op2, _ := tb.Begin("replicate", "r2", 1)
	op2.ArmRetries(10*sim.Millisecond, 1, func(o *Op) { o.Finish() }, errBoom)
	var err2 error
	op2.OnFinish(func(_ *Op, err error) { err2 = err })
	e.RunFor(50 * sim.Millisecond)
	if err2 != nil {
		t.Fatalf("retry-then-finish failed: %v", err2)
	}
}

func TestEachVisitsSortedAndSeesLiveState(t *testing.T) {
	tb := NewTable(sim.NewEngine(1))
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if _, err := tb.Begin("op", k, 1); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	tb.Each(func(o *Op) { keys = append(keys, o.Key) })
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", keys, want)
		}
	}
}
