package ctl

import (
	"bytes"
	"testing"

	"cruz/internal/sim"
	"cruz/internal/trace"
)

func TestTierPriorityOvertake(t *testing.T) {
	// A foreground frame sent after a queue of background bulk must
	// overtake it at the next frame boundary: with the send buffer full
	// of the first bulk frame, the later-queued foreground frame is
	// delivered before the still-queued second bulk frame.
	r := newRig(t)
	var order []byte
	NewConn(r.b, func(_ *Conn, payload []byte) {
		order = append(order, payload[0])
	}, nil)
	ca := NewConn(r.a, func(*Conn, []byte) {}, nil)

	bulk1 := bytes.Repeat([]byte{'A'}, 200<<10)
	bulk2 := bytes.Repeat([]byte{'B'}, 200<<10)
	if err := ca.SendTierCtx(bulk1, trace.SpanContext{}, TierBackground); err != nil {
		t.Fatal(err)
	}
	if err := ca.SendTierCtx(bulk2, trace.SpanContext{}, TierBackground); err != nil {
		t.Fatal(err)
	}
	if err := ca.SendTierCtx([]byte{'F'}, trace.SpanContext{}, TierForeground); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(5 * sim.Second)
	if len(order) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(order))
	}
	// bulk1 was partially committed before F arrived, so it completes
	// first; F then overtakes bulk2.
	if want := []byte{'A', 'F', 'B'}; !bytes.Equal(order, want) {
		t.Fatalf("delivery order %q, want %q", order, want)
	}
	if ca.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %d bytes left", ca.QueuedBytes())
	}
}

func TestPacerThrottlesBackground(t *testing.T) {
	// With a pacer at 1 MB/s, 4 MB of background bulk must take ~4s of
	// virtual time; the same traffic unpaced clears a gigabit link in
	// well under a second. Foreground frames are never paced.
	run := func(paced bool) sim.Duration {
		r := newRig(t)
		got := 0
		NewConn(r.b, func(_ *Conn, payload []byte) { got += len(payload) }, nil)
		ca := NewConn(r.a, func(*Conn, []byte) {}, nil)
		if paced {
			ca.SetPacer(NewPacer(r.engine, 1<<20, 256<<10))
		}
		total := 4 << 20
		chunk := bytes.Repeat([]byte{0xEE}, 256<<10)
		start := r.engine.Now()
		for sent := 0; sent < total; sent += len(chunk) {
			if err := ca.SendTierCtx(chunk, trace.SpanContext{}, TierBackground); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 400 && got < total; i++ {
			r.engine.RunFor(50 * sim.Millisecond)
		}
		if got < total {
			t.Fatalf("paced=%v: only %d of %d bytes arrived", paced, got, total)
		}
		return r.engine.Now().Sub(start)
	}
	unpaced := run(false)
	paced := run(true)
	if paced < 3*sim.Second {
		t.Fatalf("paced transfer finished in %v — pacer is not limiting", paced)
	}
	if unpaced > sim.Second {
		t.Fatalf("unpaced transfer took %v — link model changed?", unpaced)
	}
}

func TestPacerForegroundUnaffected(t *testing.T) {
	// A starving background queue must not delay foreground frames on
	// the same connection: even with the bucket deep in deficit, a
	// foreground frame goes out at wire speed.
	r := newRig(t)
	var seen []byte
	NewConn(r.b, func(_ *Conn, payload []byte) { seen = append(seen, payload[0]) }, nil)
	ca := NewConn(r.a, func(*Conn, []byte) {}, nil)
	ca.SetPacer(NewPacer(r.engine, 64<<10, 64<<10))

	// Exhaust the bucket: first bulk frame is admitted (charging the
	// bucket negative), the second waits.
	bulk := bytes.Repeat([]byte{'B'}, 512<<10)
	ca.SendTierCtx(bulk, trace.SpanContext{}, TierBackground)
	ca.SendTierCtx(bulk, trace.SpanContext{}, TierBackground)
	r.engine.RunFor(500 * sim.Millisecond)
	ca.SendTierCtx([]byte{'F'}, trace.SpanContext{}, TierForeground)
	r.engine.RunFor(500 * sim.Millisecond)
	found := false
	for _, b := range seen {
		if b == 'F' {
			found = true
		}
	}
	if !found {
		t.Fatalf("foreground frame stuck behind paced background queue (seen %q)", seen)
	}
}
