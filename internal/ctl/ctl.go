// Package ctl provides the control-plane plumbing shared by the Cruz
// coordinator/agents and the flushing baseline: length-prefixed message
// framing over simulated TCP connections, a serializer modeling a
// single-threaded daemon's CPU, and the op-lifecycle state machine
// (Table/Op) every distributed operation runs on.
package ctl

import (
	"encoding/binary"
	"fmt"

	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Frame layout: a 4-byte big-endian payload length, then the sender's
// 8-byte op id and 8-byte parent span id — the distributed trace context,
// zero when the frame belongs to no traced operation — then the payload.
// The context rides every frame unconditionally so frame sizes, and the
// TCP timing they induce, are identical whether tracing is on or off.
const frameHeader = 4 + 16

// Conn frames byte payloads over a TCP connection: the fixed header
// above followed by the payload. Incoming frames are delivered to the
// OnFrame callback. Writes are backpressure-aware: frames that do not
// fit in the send buffer (bulk data such as checkpoint replication) are
// queued and drained as TCP acknowledgments open window space, so a full
// buffer slows the sender down instead of failing the protocol.
type Conn struct {
	tc       *tcpip.TCPConn
	rbuf     []byte
	wqueue   [numTiers][]wframe // per-tier output queues; a head may be partially written
	pacer    *Pacer             // paces TierBackground frames; nil = unpaced
	onFrame  func(*Conn, []byte)
	onErr    func(*Conn, error)
	frameCtx trace.SpanContext

	// scratch is the persistent Recv staging buffer (allocated once per
	// connection instead of per Pump call).
	scratch []byte
	// fpool recycles small frame buffers: SendCtx draws from it and
	// drain returns a buffer once its frame is fully inside the TCP send
	// buffer (which copies). Bulk frames above framePoolBufCap draw from
	// the large tier lpool instead.
	fpool [][]byte
	// lpool is the bulk tier: a handful of recycled large buffers,
	// best-fit matched, with capacities rounded to powers of two so a
	// stream of similar-size bulk frames (checkpoint replication,
	// migration rounds) reuses one buffer instead of allocating
	// megabytes per frame.
	lpool [][]byte

	// Sent and Received count frames, for message-complexity accounting.
	Sent, Received int
	// Blocked counts the times a send had to wait for buffer space —
	// the backpressure events a hard-error path would have failed on.
	Blocked int
	// Pool counts frame-buffer recycling on the send path.
	Pool PoolStats
}

// wframe is one queued output frame: the full buffer plus how much of it
// has already entered the TCP send buffer. Keeping the offset separate
// (rather than re-slicing) preserves the original buffer for recycling.
type wframe struct {
	buf []byte
	off int
	// admitted marks a background frame whose bytes already cleared the
	// pacer, so a send retry after ErrWouldBlock is not charged twice.
	admitted bool
}

// Tier classifies a frame's scheduling priority on the send path.
// Lower tiers drain first at every frame boundary, so queued durability
// bulk never delays a control message or a migration round that arrives
// behind it — and TierBackground frames additionally pass through the
// connection's Pacer (when one is attached), so background durability
// traffic is rate-limited off the link foreground flows share.
type Tier int

const (
	// TierForeground is the default: control messages and anything on a
	// foreground critical path (freeze windows, restarts, commits).
	TierForeground Tier = iota
	// TierStream carries pre-copy / migration round data: bulk, but
	// latency-sensitive — it bounds downtime and round convergence.
	TierStream
	// TierBackground carries durability traffic (replication and
	// erasure-coded shard distribution): bulk with no deadline. It
	// yields to both other tiers and is token-bucket paced.
	TierBackground

	numTiers = 3
)

// Frame-pool sizing: control messages are small and pool densely; bulk
// frames (checkpoint replication, migration rounds) are megabytes, so a
// few recycled buffers cover a whole stream.
const (
	framePoolBufCap = 4096
	framePoolMax    = 16
	largePoolMax    = 4
)

// PoolStats counts frame-buffer pool traffic, for the bulk-path
// allocation ablation.
type PoolStats struct {
	Hits   uint64 // frames served from a recycled buffer
	Misses uint64 // frames that had to allocate
}

// getFrameBuf returns a length-n frame buffer, pooled when small and
// best-fit recycled from the bulk tier when large.
func (c *Conn) getFrameBuf(n int) []byte {
	if n <= framePoolBufCap {
		if last := len(c.fpool) - 1; last >= 0 {
			b := c.fpool[last]
			c.fpool = c.fpool[:last]
			c.Pool.Hits++
			return b[:n]
		}
		c.Pool.Misses++
		return make([]byte, n, framePoolBufCap)
	}
	best := -1
	for i, b := range c.lpool {
		if cap(b) >= n && (best < 0 || cap(b) < cap(c.lpool[best])) {
			best = i
		}
	}
	if best >= 0 {
		b := c.lpool[best]
		c.lpool[best] = c.lpool[len(c.lpool)-1]
		c.lpool = c.lpool[:len(c.lpool)-1]
		c.Pool.Hits++
		return b[:n]
	}
	// Round the capacity up to a power of two: the next bulk frame in
	// the stream is rarely identical in size, but it fits a recycled
	// buffer at most 2x larger.
	capN := framePoolBufCap
	for capN < n {
		capN <<= 1
	}
	c.Pool.Misses++
	return make([]byte, n, capN)
}

// putFrameBuf recycles a fully-sent frame buffer into its tier.
func (c *Conn) putFrameBuf(b []byte) {
	switch {
	case cap(b) == framePoolBufCap:
		if len(c.fpool) < framePoolMax {
			c.fpool = append(c.fpool, b[:0])
		}
	case cap(b) > framePoolBufCap:
		if len(c.lpool) < largePoolMax {
			c.lpool = append(c.lpool, b[:0])
		}
	}
}

// NewConn wraps tc. It takes over the connection's notify callback.
func NewConn(tc *tcpip.TCPConn, onFrame func(*Conn, []byte), onErr func(*Conn, error)) *Conn {
	c := &Conn{tc: tc, onFrame: onFrame, onErr: onErr}
	tc.SetNotify(c.Pump)
	return c
}

// TCP returns the underlying connection.
func (c *Conn) TCP() *tcpip.TCPConn { return c.tc }

// Send transmits one frame with a zero trace context. Frames queue until
// the handshake finishes and while the send buffer is full; Send only
// errors on a dead connection.
func (c *Conn) Send(payload []byte) error {
	return c.SendCtx(payload, trace.SpanContext{})
}

// SendCtx transmits one frame stamped with the trace context ctx, which
// the receiver surfaces through FrameCtx during frame dispatch.
func (c *Conn) SendCtx(payload []byte, ctx trace.SpanContext) error {
	return c.SendTierCtx(payload, ctx, TierForeground)
}

// SendTierCtx transmits one frame on a specific priority tier. Frames on
// lower tiers overtake queued higher-tier frames at frame boundaries;
// TierBackground frames are additionally paced when a Pacer is attached.
func (c *Conn) SendTierCtx(payload []byte, ctx trace.SpanContext, tier Tier) error {
	if err := c.tc.Err(); err != nil {
		return fmt.Errorf("ctl: send on dead conn: %w", err)
	}
	frame := c.getFrameBuf(frameHeader + len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint64(frame[4:], uint64(ctx.Op))
	binary.BigEndian.PutUint64(frame[12:], uint64(ctx.Span))
	copy(frame[frameHeader:], payload)
	c.Sent++
	c.wqueue[tier] = append(c.wqueue[tier], wframe{buf: frame})
	if c.tc.Established() {
		c.drain()
	}
	return nil
}

// SetPacer attaches the node's background-traffic pacer to this
// connection. Only TierBackground frames consult it.
func (c *Conn) SetPacer(p *Pacer) { c.pacer = p }

// QueuedBytes returns the bytes waiting for send-buffer space.
func (c *Conn) QueuedBytes() int {
	n := 0
	for t := range c.wqueue {
		for _, f := range c.wqueue[t] {
			n += len(f.buf) - f.off
		}
	}
	return n
}

func (c *Conn) queued() bool {
	for t := range c.wqueue {
		if len(c.wqueue[t]) > 0 {
			return true
		}
	}
	return false
}

// nextTier picks the queue to drain from. A partially-written frame must
// finish first (frames are atomic on the wire); otherwise the lowest
// tier with queued frames wins, and a background head additionally needs
// pacer tokens to start.
func (c *Conn) nextTier() (Tier, bool) {
	for t := Tier(0); t < numTiers; t++ {
		if len(c.wqueue[t]) > 0 && c.wqueue[t][0].off > 0 {
			return t, true
		}
	}
	for t := Tier(0); t < numTiers; t++ {
		if len(c.wqueue[t]) == 0 {
			continue
		}
		f := &c.wqueue[t][0]
		if t == TierBackground && c.pacer != nil && !f.admitted {
			if !c.pacer.admit(c, int64(len(f.buf))) {
				return 0, false
			}
			f.admitted = true
		}
		return t, true
	}
	return 0, false
}

// drain pushes queued frames into the TCP send buffer until it fills.
// The remainder goes out from Pump as acknowledgments free space. TCP's
// Send copies accepted bytes, so a fully-sent frame buffer is dead and
// returns to the pool.
func (c *Conn) drain() {
	for {
		t, ok := c.nextTier()
		if !ok {
			return
		}
		f := &c.wqueue[t][0]
		n, err := c.tc.Send(f.buf[f.off:])
		if err == tcpip.ErrWouldBlock {
			c.Blocked++
			return
		}
		if err != nil {
			// Terminal errors surface through Pump's Err path.
			return
		}
		f.off += n
		if f.off < len(f.buf) {
			c.Blocked++
			return
		}
		c.putFrameBuf(f.buf)
		c.wqueue[t] = c.wqueue[t][1:]
	}
}

// Pump drains readable bytes, dispatches complete frames, and flushes
// queued writes as window space opens. It is the connection's notify
// handler; wrappers that need their own notification chain may call it
// directly.
func (c *Conn) Pump() {
	if err := c.tc.Err(); err != nil {
		if c.onErr != nil {
			c.onErr(c, err)
		}
		return
	}
	if c.tc.Established() && c.queued() {
		c.drain()
	}
	if c.scratch == nil {
		c.scratch = make([]byte, 4096)
	}
	for {
		n, err := c.tc.Recv(c.scratch, false)
		if err != nil || n == 0 {
			break
		}
		c.rbuf = append(c.rbuf, c.scratch[:n]...)
	}
	for {
		if len(c.rbuf) < frameHeader {
			return
		}
		size := int(binary.BigEndian.Uint32(c.rbuf))
		if len(c.rbuf) < frameHeader+size {
			return
		}
		c.frameCtx = trace.SpanContext{
			Op:   trace.OpID(binary.BigEndian.Uint64(c.rbuf[4:])),
			Span: trace.SpanID(binary.BigEndian.Uint64(c.rbuf[12:])),
		}
		payload := c.rbuf[frameHeader : frameHeader+size]
		c.rbuf = c.rbuf[frameHeader+size:]
		c.Received++
		c.onFrame(c, payload)
	}
}

// FrameCtx returns the trace context of the most recently dispatched
// frame. It is meaningful only inside the OnFrame callback; handlers
// that defer work must capture it synchronously.
func (c *Conn) FrameCtx() trace.SpanContext { return c.frameCtx }

// Serializer models a single-threaded daemon's CPU: queued work items
// execute in order, each occupying the daemon for its cost. Fan-out of N
// messages therefore takes O(N) serial time — the origin of the per-node
// coordination-overhead slope in the paper's Fig. 5(b).
type Serializer struct {
	Engine *sim.Engine
	freeAt sim.Time
}

// Do schedules fn after cost of serialized daemon CPU time.
func (s *Serializer) Do(cost sim.Duration, fn func()) {
	start := s.Engine.Now()
	if s.freeAt > start {
		start = s.freeAt
	}
	s.freeAt = start.Add(cost)
	s.Engine.ScheduleAt(s.freeAt, fn)
}
