// Package ctl provides the control-plane plumbing shared by the Cruz
// coordinator/agents and the flushing baseline: length-prefixed message
// framing over simulated TCP connections, and a serializer modeling a
// single-threaded daemon's CPU.
package ctl

import (
	"encoding/binary"
	"fmt"

	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// Conn frames byte payloads over a TCP connection: 4-byte big-endian
// length followed by the payload. Incoming frames are delivered to the
// OnFrame callback; writes are expected to fit in the send buffer
// (control messages are tiny), and a full buffer is treated as a protocol
// failure.
type Conn struct {
	tc      *tcpip.TCPConn
	rbuf    []byte
	wqueue  [][]byte // frames waiting for the handshake to finish
	onFrame func(*Conn, []byte)
	onErr   func(*Conn, error)

	// Sent and Received count frames, for message-complexity accounting.
	Sent, Received int
}

// NewConn wraps tc. It takes over the connection's notify callback.
func NewConn(tc *tcpip.TCPConn, onFrame func(*Conn, []byte), onErr func(*Conn, error)) *Conn {
	c := &Conn{tc: tc, onFrame: onFrame, onErr: onErr}
	tc.SetNotify(c.Pump)
	return c
}

// TCP returns the underlying connection.
func (c *Conn) TCP() *tcpip.TCPConn { return c.tc }

// Send transmits one frame. Frames sent before the connection finishes
// its handshake are queued and flushed on establishment.
func (c *Conn) Send(payload []byte) error {
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	c.Sent++
	if !c.tc.Established() || len(c.wqueue) > 0 {
		if err := c.tc.Err(); err != nil {
			return fmt.Errorf("ctl: send on dead conn: %w", err)
		}
		c.wqueue = append(c.wqueue, frame)
		return nil
	}
	return c.write(frame)
}

func (c *Conn) write(frame []byte) error {
	n, err := c.tc.Send(frame)
	if err != nil {
		return fmt.Errorf("ctl: send: %w", err)
	}
	if n != len(frame) {
		return fmt.Errorf("ctl: short write %d/%d", n, len(frame))
	}
	return nil
}

// Pump drains readable bytes and dispatches complete frames. It is the
// connection's notify handler; wrappers that need their own notification
// chain may call it directly.
func (c *Conn) Pump() {
	if err := c.tc.Err(); err != nil {
		if c.onErr != nil {
			c.onErr(c, err)
		}
		return
	}
	if c.tc.Established() && len(c.wqueue) > 0 {
		q := c.wqueue
		c.wqueue = nil
		for _, frame := range q {
			if err := c.write(frame); err != nil {
				break
			}
		}
	}
	buf := make([]byte, 4096)
	for {
		n, err := c.tc.Recv(buf, false)
		if err != nil || n == 0 {
			break
		}
		c.rbuf = append(c.rbuf, buf[:n]...)
	}
	for {
		if len(c.rbuf) < 4 {
			return
		}
		size := int(binary.BigEndian.Uint32(c.rbuf))
		if len(c.rbuf) < 4+size {
			return
		}
		payload := c.rbuf[4 : 4+size]
		c.rbuf = c.rbuf[4+size:]
		c.Received++
		c.onFrame(c, payload)
	}
}

// Serializer models a single-threaded daemon's CPU: queued work items
// execute in order, each occupying the daemon for its cost. Fan-out of N
// messages therefore takes O(N) serial time — the origin of the per-node
// coordination-overhead slope in the paper's Fig. 5(b).
type Serializer struct {
	Engine *sim.Engine
	freeAt sim.Time
}

// Do schedules fn after cost of serialized daemon CPU time.
func (s *Serializer) Do(cost sim.Duration, fn func()) {
	start := s.Engine.Now()
	if s.freeAt > start {
		start = s.freeAt
	}
	s.freeAt = start.Add(cost)
	s.Engine.ScheduleAt(s.freeAt, fn)
}
