package ctl

import (
	"cruz/internal/sim"
)

// Pacer is a token bucket shared by one node's control connections: it
// rate-limits TierBackground frames (replication and erasure-coded
// shard distribution) so durability traffic never saturates the link a
// pre-copy stream or foreground pod traffic is using. Tokens accrue at
// Rate bytes per second of virtual time up to Burst; a background frame
// starts only when the bucket is non-negative, and charges its full
// size (the bucket may go negative, which simply pushes the next start
// out — large frames stay whole on the wire, long-run rate is exact).
//
// Connections blocked on tokens register themselves; the pacer arms one
// engine timer for the earliest ready time and re-drains the waiters in
// registration order — deterministic, like every other event source.
type Pacer struct {
	engine *sim.Engine
	rate   int64 // bytes per second; <= 0 disables pacing
	burst  int64
	tokens int64
	last   sim.Time

	waiting []*Conn
	armed   bool

	// Paced counts frames that cleared the bucket; Waits counts the
	// times a frame had to sit out a refill.
	Paced, Waits uint64
}

// NewPacer creates a token bucket refilling at rate bytes/sec with the
// given burst. rate <= 0 disables pacing (admit always succeeds).
func NewPacer(engine *sim.Engine, rate, burst int64) *Pacer {
	if burst <= 0 {
		burst = rate
	}
	return &Pacer{engine: engine, rate: rate, burst: burst, tokens: burst, last: engine.Now()}
}

// Rate returns the configured background rate in bytes per second.
func (p *Pacer) Rate() int64 { return p.rate }

func (p *Pacer) refill() {
	now := p.engine.Now()
	if now <= p.last {
		return
	}
	elapsed := now.Sub(p.last)
	p.last = now
	add := p.rate * int64(elapsed) / int64(sim.Second)
	p.tokens += add
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
}

// admit asks to start an n-byte background frame on conn c. On refusal
// the conn is queued for a wake-up once tokens recover.
func (p *Pacer) admit(c *Conn, n int64) bool {
	if p.rate <= 0 {
		return true
	}
	p.refill()
	if p.tokens < 0 {
		p.wait(c)
		return false
	}
	p.tokens -= n
	p.Paced++
	return true
}

func (p *Pacer) wait(c *Conn) {
	p.Waits++
	for _, w := range p.waiting {
		if w == c {
			c = nil
			break
		}
	}
	if c != nil {
		p.waiting = append(p.waiting, c)
	}
	if p.armed {
		return
	}
	deficit := -p.tokens
	if deficit < 0 {
		deficit = 0
	}
	// Time until the bucket is non-negative again, rounded up.
	wake := sim.Duration((deficit*int64(sim.Second) + p.rate - 1) / p.rate)
	if wake <= 0 {
		wake = sim.Duration(1)
	}
	p.armed = true
	p.engine.Schedule(wake, func() {
		p.armed = false
		ws := p.waiting
		p.waiting = nil
		for _, c := range ws {
			if c.tc.Err() == nil && c.tc.Established() {
				c.drain()
			}
		}
	})
}
