package cruz_test

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/core"
	"cruz/internal/trace"
)

// migrateSlm is smallSlm with a pre-copy-friendly write profile: a
// bigger grid written more slowly, so a streaming round outruns the
// application's redirty rate and the rounds can converge. (smallSlm
// rewrites its whole 1 MB grid in ~16 steps — faster than any round can
// stream it — which is the workload pre-copy provably cannot help.)
func migrateSlm(workers int) slm.Config {
	cfg := smallSlm(workers)
	cfg.GridBytes = 4 << 20
	cfg.DirtyPagesPerStep = 4
	return cfg
}

// ringWorker resolves a pod's slm rank wherever the pod currently lives.
func ringWorker(cl *cruz.Cluster, name string) *slm.Worker {
	return cl.Pod(name).Process(1).Program().(*slm.Worker)
}

// migrateOpenOps asserts every op table drained.
func migrateOpenOps(t *testing.T, cl *cruz.Cluster, skipNode int) {
	t.Helper()
	if n := cl.Coordinator.OpenOps(); n != 0 {
		t.Errorf("coordinator has %d open ops", n)
	}
	for i, node := range cl.Nodes {
		if i == skipNode {
			continue
		}
		if n := node.Agent.OpenOps(); n != 0 {
			t.Errorf("node %d agent has %d open ops", i, n)
		}
	}
}

// TestLiveMigration is the tentpole happy path: a ring worker migrates to
// an empty node while its neighbours keep talking to it. The established
// TCP connections must survive the address takeover (the slm halo
// protocol faults on any lost or duplicated byte), the freeze must stay
// in the single-digit-millisecond range the paper's §4.2 design targets,
// and the coordinated machinery must keep working against the re-homed
// member afterwards.
func TestLiveMigration(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRingCfg(t, cl, migrateSlm(3))
	cl.Run(300 * cruz.Millisecond)
	stepsAt := make(map[string]int)
	for _, n := range names {
		w := ringWorker(cl, n)
		if w.Fault != "" || w.StepsDone == 0 {
			t.Fatalf("pod %s before migration: steps=%d fault=%q", n, w.StepsDone, w.Fault)
		}
		stepsAt[n] = w.StepsDone
	}

	res, err := cl.Migrate(job, "wb", 3, cruz.MigrateOptions{
		Precopy: cruz.PrecopyConfig{MaxRounds: 6, DirtyThresholdPages: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("migration result: %+v", *res)
	if res.Pod != "wb" || res.From != cl.Nodes[1].Agent.Addr() || res.To != cl.Nodes[3].Agent.Addr() {
		t.Fatalf("result endpoints: %+v", res)
	}
	if res.Rounds < 1 {
		t.Fatalf("expected live pre-copy rounds, got %d", res.Rounds)
	}
	if len(res.RoundPages) != res.Rounds+1 {
		t.Fatalf("RoundPages %v does not cover %d rounds + residual", res.RoundPages, res.Rounds)
	}
	// Convergence: the residual frozen set must be far smaller than the
	// full image round 0 streamed.
	if last, first := res.RoundPages[len(res.RoundPages)-1], res.RoundPages[0]; last*4 > first {
		t.Fatalf("residual %d pages did not converge from %d", last, first)
	}
	if res.BytesStreamed <= 0 || res.Latency <= 0 || res.Messages <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Downtime <= 0 || res.Downtime >= 15*cruz.Millisecond {
		t.Fatalf("downtime %v outside (0, 15ms)", res.Downtime)
	}
	if node := cl.PodNode("wb"); node == nil || node.Index != 3 {
		t.Fatalf("pod did not re-home: %+v", node)
	}
	if out := cl.Nodes[1].Agent.Stats.MigrationsOut; out != 1 {
		t.Fatalf("source MigrationsOut = %d", out)
	}
	if in := cl.Nodes[3].Agent.Stats.MigrationsIn; in != 1 {
		t.Fatalf("destination MigrationsIn = %d", in)
	}

	// The ring keeps computing: every worker — including the migrated one
	// and the two peers holding TCP connections to its moved address —
	// makes progress with no halo fault.
	cl.Run(300 * cruz.Millisecond)
	for _, n := range names {
		w := ringWorker(cl, n)
		if w.Fault != "" {
			t.Fatalf("pod %s faulted after migration: %q", n, w.Fault)
		}
		if w.StepsDone <= stepsAt[n] {
			t.Fatalf("pod %s stalled after migration: %d -> %d", n, stepsAt[n], w.StepsDone)
		}
	}
	migrateOpenOps(t, cl, -1)

	// The coordinated protocol still works against the re-homed member.
	ck, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ck.Seq <= res.Seq {
		t.Fatalf("post-migration checkpoint seq %d not after migration seq %d", ck.Seq, res.Seq)
	}
}

// TestMigrationStateEquivalence is the correctness property: a migrated
// run must converge to the exact same model state as an unmigrated run
// of the same seed. The slm grid is a pure function of steps executed,
// so after both runs quiesce at the same finite step count, every pod's
// resident memory must be byte-identical — any page lost, stale or
// duplicated by the round merge chain shows up here.
func TestMigrationStateEquivalence(t *testing.T) {
	run := func(migrate bool) (string, *cruz.MigrationResult) {
		cl, err := cruz.New(cruz.Config{Nodes: 4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		cfg := migrateSlm(3)
		cfg.Steps = 200
		cfg.Linger = true
		names, job := deployRingCfg(t, cl, cfg)
		cl.Run(100 * cruz.Millisecond)
		var res *cruz.MigrationResult
		if migrate {
			res, err = cl.Migrate(job, names[1], 3, cruz.MigrateOptions{
				Precopy: cruz.PrecopyConfig{MaxRounds: 6, DirtyThresholdPages: 32},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		done := func() bool {
			for _, n := range names {
				if !ringWorker(cl, n).Done() {
					return false
				}
			}
			return true
		}
		if !cl.RunUntil(done, 10*cruz.Second) {
			t.Fatal("ring did not finish its steps")
		}
		var b bytes.Buffer
		for _, n := range names {
			w := ringWorker(cl, n)
			mem := cl.Pod(n).Process(1).Mem()
			h := fnv.New64a()
			for _, pn := range mem.PageNumbers(false) {
				h.Write(mem.PageData(pn))
			}
			fmt.Fprintf(&b, "%s steps=%d fault=%q pages=%d mem=%016x\n",
				n, w.StepsDone, w.Fault, mem.ResidentPages(), h.Sum64())
		}
		return b.String(), res
	}
	migrated, res := run(true)
	if res.Rounds < 1 {
		t.Fatalf("migration did not run live rounds: %+v", res)
	}
	control, _ := run(false)
	if migrated != control {
		t.Fatalf("migrated run state diverged from control:\nmigrated:\n%scontrol:\n%s", migrated, control)
	}
}

// TestMigrationDeterministicTrace: two same-seed migration runs produce
// byte-identical timelines and identical results, and every migration
// span closes (the whole operation renders as one finished causal tree).
func TestMigrationDeterministicTrace(t *testing.T) {
	run := func() ([]byte, string) {
		cl, err := cruz.New(cruz.Config{Nodes: 4, Seed: 7, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		names, job := deployRingCfg(t, cl, migrateSlm(3))
		cl.Run(250 * cruz.Millisecond)
		res, err := cl.Migrate(job, names[1], 3, cruz.MigrateOptions{
			Dedup:   true,
			Precopy: cruz.PrecopyConfig{MaxRounds: 6, DirtyThresholdPages: 32},
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(100 * cruz.Millisecond)
		if n := cl.Trace().OpenSpans(); n != 0 {
			t.Fatalf("%d spans still open after migration: %v", n, cl.Trace().OpenSpanNames())
		}
		var tb bytes.Buffer
		if err := trace.WriteTimeline(&tb, cl.Trace().Events()); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), fmt.Sprintf("%+v", *res)
	}
	t1, r1 := run()
	t2, r2 := run()
	if r1 != r2 {
		t.Fatalf("same-seed migration results differ:\n%s\n%s", r1, r2)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatalf("same-seed migration timelines differ (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Contains(t1, []byte("migrate")) {
		t.Fatal("timeline has no migrate spans")
	}
}

// TestMigrationAbortRollsBack aborts a migration mid-round: the source
// rolls the pre-copy epoch back and the pod keeps running at home, no op
// leaks, and neither store retains any round image.
func TestMigrationAbortRollsBack(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRing(t, cl, 3)
	cl.Run(200 * cruz.Millisecond)
	stepsAt := ringWorker(cl, "wb").StepsDone

	if err := cl.Coordinator.AbortMigration(job.Name); !errors.Is(err, core.ErrNoMigration) {
		t.Fatalf("abort with nothing in flight = %v", err)
	}

	var merr error
	fired := false
	cl.Coordinator.Migrate(job, "wb", cl.Nodes[3].Agent.Addr(), core.MigrateOptions{
		Precopy: core.PrecopyConfig{MaxRounds: 8},
	}, func(r *core.MigrationResult, err error) { merr, fired = err, true })
	cl.Run(5 * cruz.Millisecond) // into round 0's capture/save, well before convergence
	if fired {
		t.Fatal("migration finished before the abort could land")
	}
	if err := cl.Coordinator.AbortMigration(job.Name); err != nil {
		t.Fatal(err)
	}
	if !cl.RunUntil(func() bool { return fired }, 5*cruz.Second) {
		t.Fatal("abort did not complete the migration op")
	}
	if !errors.Is(merr, core.ErrAborted) {
		t.Fatalf("migration error = %v, want ErrAborted", merr)
	}

	// Rollback: pod still at home, resumed, progressing, no residue.
	if node := cl.PodNode("wb"); node == nil || node.Index != 1 {
		t.Fatalf("aborted migration moved the pod: %+v", node)
	}
	cl.Run(200 * cruz.Millisecond)
	for _, n := range names {
		w := ringWorker(cl, n)
		if w.Fault != "" {
			t.Fatalf("pod %s faulted after abort: %q", n, w.Fault)
		}
	}
	if w := ringWorker(cl, "wb"); w.StepsDone <= stepsAt {
		t.Fatalf("pod wb stalled after abort: %d -> %d", stepsAt, w.StepsDone)
	}
	migrateOpenOps(t, cl, -1)
	for i, node := range cl.Nodes {
		if seq, ok := node.Store.LatestSeq("wb"); ok {
			t.Errorf("node %d store kept aborted round image seq %d", i, seq)
		}
	}
}

// TestMigrationDestNodeDeath kills the destination mid-migration: the
// lease machinery must fail the migration, the source must roll back and
// keep its pod, and the PR 3 auto-recovery must re-home the job members
// the dead node actually hosted. The job then keeps computing.
func TestMigrationDestNodeDeath(t *testing.T) {
	cl, names, job := replicatedCluster(t, cruz.Config{
		Nodes: 3, Seed: 9, Replicas: 1, AutoRecover: true,
	}, 3)

	var merr error
	fired := false
	cl.Coordinator.Migrate(job, names[1], cl.Nodes[2].Agent.Addr(), core.MigrateOptions{
		Precopy: core.PrecopyConfig{MaxRounds: 8},
	}, func(r *core.MigrationResult, err error) { merr, fired = err, true })
	cl.Run(3 * cruz.Millisecond)
	if fired {
		t.Fatal("migration finished before the failure")
	}
	cl.FailNode(2)
	if !cl.RunUntil(func() bool { return fired }, 10*cruz.Second) {
		t.Fatal("destination death did not fail the migration")
	}
	if !errors.Is(merr, core.ErrNodeFailed) {
		t.Fatalf("migration error = %v, want ErrNodeFailed", merr)
	}

	// The dead node hosted a ring member, so auto-recovery restarts the
	// job from the replicated checkpoint and re-homes that member.
	if !cl.AwaitRecovery(1, 10*cruz.Second) {
		t.Fatalf("no recovery after destination death: %v", cl.RecoveryErr())
	}
	if err := cl.RecoveryErr(); err != nil {
		t.Fatal(err)
	}
	if node := cl.PodNode(names[2]); node == nil || node.Index == 2 {
		t.Fatalf("pod %s not re-homed off the dead node: %+v", names[2], node)
	}

	steps := make(map[string]int)
	for _, n := range names {
		steps[n] = ringWorker(cl, n).StepsDone
	}
	cl.Run(300 * cruz.Millisecond)
	for _, n := range names {
		w := ringWorker(cl, n)
		if w.Fault != "" {
			t.Fatalf("pod %s faulted after recovery: %q", n, w.Fault)
		}
		if w.StepsDone <= steps[n] {
			t.Fatalf("pod %s stalled after recovery: %d -> %d", n, steps[n], w.StepsDone)
		}
	}
	migrateOpenOps(t, cl, 2)
}

// TestStopCopyMigrationBaseline: MaxRounds == 0 drives the same protocol
// as pure stop-and-copy — one freeze covering the whole image. It must
// still work (TCP survives) but with an order-of-magnitude larger
// downtime than the live path, which is the ablation the paper's design
// argues for.
func TestStopCopyMigrationBaseline(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRing(t, cl, 3)
	cl.Run(300 * cruz.Millisecond)
	res, err := cl.Migrate(job, "wb", 3, cruz.MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || len(res.RoundPages) != 1 {
		t.Fatalf("stop-and-copy ran rounds: %+v", res)
	}
	if res.Downtime < 15*cruz.Millisecond {
		t.Fatalf("stop-and-copy downtime %v implausibly small for a full image", res.Downtime)
	}
	cl.Run(300 * cruz.Millisecond)
	for _, n := range names {
		w := ringWorker(cl, n)
		if w.Fault != "" || w.StepsDone == 0 {
			t.Fatalf("pod %s after stop-copy migration: steps=%d fault=%q", n, w.StepsDone, w.Fault)
		}
	}
	migrateOpenOps(t, cl, -1)
}

// migrateAfterCheckpoint builds a 4-node ring cluster, checkpoints it
// (waiting for any configured replication to land on the coordinator's
// holder registry), runs on a little, and migrates wb to node 3.
func migrateAfterCheckpoint(t *testing.T, replicas int) *cruz.MigrationResult {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: 4, Seed: 17, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRingCfg(t, cl, migrateSlm(3))
	cl.Run(300 * cruz.Millisecond)
	ck, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replicas > 0 {
		ok := cl.RunUntil(func() bool {
			return cl.Coordinator.KnownHolders("wb", ck.Seq) >= replicas+1
		}, 10*cruz.Second)
		if !ok {
			t.Fatal("replication never completed")
		}
	}
	cl.Run(200 * cruz.Millisecond)
	res, err := cl.Migrate(job, "wb", 3, cruz.MigrateOptions{
		Precopy: cruz.PrecopyConfig{MaxRounds: 6, DirtyThresholdPages: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(300 * cruz.Millisecond)
	for _, n := range names {
		w := ringWorker(cl, n)
		if w.Fault != "" || w.StepsDone == 0 {
			t.Fatalf("pod %s after migration: steps=%d fault=%q", n, w.StepsDone, w.Fault)
		}
	}
	if node := cl.PodNode("wb"); node == nil || node.Index != 3 {
		t.Fatalf("pod did not re-home: %+v", node)
	}
	migrateOpenOps(t, cl, -1)
	return res
}

// TestMigrationReusesReplicatedBase: when background durability already
// placed the pod's newest checkpoint chain on the destination, the
// round-0 base negotiation must stream only the delta against that
// shared base instead of the full image — the identical scenario without
// replication is the control.
func TestMigrationReusesReplicatedBase(t *testing.T) {
	// Replicas=2 puts wb's chain on nodes 2 and 3 (node 1's next ring
	// peers) — node 3 is the migration destination.
	reused := migrateAfterCheckpoint(t, 2)
	control := migrateAfterCheckpoint(t, 0)
	if reused.BytesStreamed <= 0 || control.BytesStreamed <= 0 {
		t.Fatalf("accounting: reused=%d control=%d", reused.BytesStreamed, control.BytesStreamed)
	}
	if reused.BytesStreamed*2 >= control.BytesStreamed {
		t.Fatalf("base reuse saved too little: %d vs control %d bytes",
			reused.BytesStreamed, control.BytesStreamed)
	}
}
