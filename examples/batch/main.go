// Batch: an LSF-style scheduler driving periodic checkpoints, suspension,
// and crash recovery.
//
// The paper integrated Cruz with the LSF job scheduler (§6) and motivates
// checkpoint-restart for resource management: suspend a job to free its
// nodes, resume it later, and recover from failures without losing work.
// This example submits an slm job with periodic checkpoints every 2
// virtual seconds, suspends and resumes it, then kills every task and
// recovers from the last periodic checkpoint.
//
// Run with: go run ./examples/batch
package main

import (
	"fmt"
	"log"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/batch"
	"cruz/internal/sim"
)

func init() { cruz.RegisterProgram(&slm.Worker{}) }

func main() {
	cl, err := cruz.New(cruz.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	sched := batch.New(cl)

	cfg := slm.Config{
		Workers:             4,
		Steps:               400,
		TotalComputePerStep: 60 * sim.Millisecond,
		StepOverhead:        5 * sim.Millisecond,
		HaloBytes:           16 << 10,
		GridBytes:           4 << 20,
		DirtyPagesPerStep:   32,
		Port:                9200,
	}
	job, err := sched.Submit(batch.JobSpec{
		Name:            "weather",
		Tasks:           4,
		CheckpointEvery: 2 * cruz.Second,
		Optimized:       true, // Fig. 4 early-continue protocol
		Make: func(rank, n int, ips []cruz.Addr) cruz.Program {
			return slm.NewWorker(cfg, rank, ips[(rank+1)%n])
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	step := func() int {
		if p := cl.Pod("weather-0").Process(1); p != nil {
			return p.Program().(*slm.Worker).StepsDone
		}
		return -1
	}

	cl.Run(5 * cruz.Second)
	fmt.Printf("t=%-6v job at step %d; %d periodic checkpoints taken\n",
		cl.Engine.Now(), step(), job.Checkpoints)

	if err := job.Suspend(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-6v suspended (final checkpoint written); nodes are free\n", cl.Engine.Now())
	cl.Run(3 * cruz.Second)

	if err := job.Resume(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-6v resumed at step %d\n", cl.Engine.Now(), step())

	cl.Run(3 * cruz.Second)
	fmt.Printf("t=%-6v job at step %d; simulating a crash of every task...\n", cl.Engine.Now(), step())
	for i := 0; i < 4; i++ {
		cl.Pod(fmt.Sprintf("weather-%d", i)).Destroy()
	}
	if err := job.RecoverFromCrash(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-6v recovered from checkpoint %d at step %d\n",
		cl.Engine.Now(), job.Checkpoints, step())

	if !cl.RunUntil(func() bool { return job.State() == batch.StateCompleted }, 120*cruz.Second) {
		log.Fatalf("job never completed (step %d)", step())
	}
	fmt.Printf("t=%-6v job completed all %d steps; %d checkpoints total, 0 lost steps beyond the last checkpoint\n",
		cl.Engine.Now(), cfg.Steps, job.Checkpoints)
}
