// Migration: move a live database server between machines while a client
// keeps using it.
//
// A kvstore server runs in a pod on node 0; a client on node 1 issues
// SET/GET operations with verification, continuously. Mid-session the
// server pod is checkpointed, destroyed, and restored on node 2 — taking
// its IP and MAC with it (the paper's §4.2 network-address migration).
// The client is NOT under checkpoint control and never reconnects: its
// TCP connection survives because the server's full socket state
// (sequence numbers, buffer contents) moves inside the checkpoint image
// and the gratuitous ARP re-points the switch.
//
// Run with: go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"cruz"
	"cruz/internal/apps/kvstore"
	"cruz/internal/ckpt"
)

func init() {
	cruz.RegisterProgram(&kvstore.Server{})
	cruz.RegisterProgram(&kvstore.Client{})
}

func main() {
	cl, err := cruz.New(cruz.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Database server inside a pod on node 0.
	dbPod, err := cl.NewPod(0, "db")
	if err != nil {
		log.Fatal(err)
	}
	server := kvstore.NewServer(0)
	if _, err := dbPod.Spawn("kvd", server); err != nil {
		log.Fatal(err)
	}

	// Client as a plain process on node 1 — no pod, no checkpointing,
	// no awareness that the server will move.
	client := kvstore.NewClient(cruz.AddrPort{Addr: dbPod.IP(), Port: kvstore.DefaultPort})
	cl.Nodes[1].Kernel.Spawn("kvc", client, 0)

	cl.Run(300 * cruz.Millisecond)
	fmt.Printf("t=%-8v client completed %d verified ops against node 0\n",
		cl.Engine.Now(), client.Done)

	// --- migrate the server pod: node 0 -> node 2 ------------------
	fmt.Printf("t=%-8v migrating pod %q (IP %v) to node 2...\n",
		cl.Engine.Now(), dbPod.Name(), dbPod.IP())

	// 1. Disable the pod's communication (in-flight packets will be
	//    recovered by TCP retransmission).
	filter := dbPod.Kernel().Stack().Filter()
	rule := filter.AddDropAddr(dbPod.IP())
	// 2. Stop and capture.
	stopped := false
	dbPod.Stop(func() { stopped = true })
	if !cl.RunUntil(func() bool { return stopped }, cruz.Second) {
		log.Fatal("pod did not quiesce")
	}
	img, err := ckpt.Capture(dbPod, 1, ckpt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// 3. Destroy the source instance; its VIF (IP+MAC) disappears from
	//    node 0.
	dbPod.Destroy()
	filter.RemoveRule(rule)
	// 4. Restore on node 2: same IP, same MAC, same TCP connections;
	//    the restore announces the new location via gratuitous ARP.
	newPod, err := ckpt.Restore(cl.Nodes[2].Kernel, img)
	if err != nil {
		log.Fatal(err)
	}
	newPod.Resume()
	fmt.Printf("t=%-8v pod restored on node 2, resuming\n", cl.Engine.Now())

	opsBefore := client.Done
	cl.Run(500 * cruz.Millisecond)
	server2 := newPod.Process(1).Program().(*kvstore.Server)
	fmt.Printf("t=%-8v client completed %d more verified ops against node 2\n",
		cl.Engine.Now(), client.Done-opsBefore)
	fmt.Printf("           client fault: %q   server fault: %q\n", client.Fault, server2.Fault)
	fmt.Printf("           database still holds %d keys; client connection was never reset\n",
		len(server2.Table))
	if client.Fault != "" || client.Done == opsBefore {
		log.Fatal("migration disturbed the client")
	}
}
