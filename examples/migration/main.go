// Migration: move a live database server between machines while a client
// keeps using it.
//
// A kvstore server runs in a pod on node 0 next to a cache process that
// keeps an 8 MB in-memory working set hot; a client on node 1 issues
// SET/GET operations with verification, continuously. Mid-session the
// pod live-migrates to node 2: pre-copy rounds stream the image while
// the server keeps serving, the pod freezes only for the residual dirty
// set, and the address takeover (VIF IP + MAC + gratuitous ARP, the
// paper's §4.2 network-address migration) moves the live TCP state with
// it. The client is NOT under checkpoint control and never reconnects:
// its connection survives because the server's full socket state
// (sequence numbers, buffer contents) moves inside the image.
//
// Run with: go run ./examples/migration
// Baseline:  go run ./examples/migration -stopcopy
// (-stopcopy disables pre-copy: freeze, copy everything, restore — the
// whole image transfers inside the downtime window.)
package main

import (
	"flag"
	"fmt"
	"log"

	"cruz"
	"cruz/internal/apps/kvstore"
	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
)

// HotState models the in-memory working set a real service carries
// alongside its request handling: an 8 MB cache with a rotating write
// set. It is what makes the pre-copy convergence curve visible — the
// kvstore table itself is tiny.
type HotState struct {
	Bytes   uint64 // cache size
	PerTick int    // pages rewritten per tick
	Base    uint64
	Ticks   uint64
}

func (h *HotState) Step(ctx *kernel.ProcContext) kernel.StepResult {
	pages := h.Bytes / mem.PageSize
	if h.Base == 0 {
		base, err := ctx.Mem().Alloc(h.Bytes, "cache")
		if err != nil {
			return kernel.Exit(0, 1)
		}
		h.Base = base
		// Materialize the cache (demand-zero pages don't checkpoint).
		for pn := uint64(0); pn < pages; pn++ {
			if err := ctx.Mem().WriteUint64(base+pn*mem.PageSize, pn); err != nil {
				return kernel.Exit(0, 1)
			}
		}
		return kernel.Continue(5 * sim.Millisecond)
	}
	for i := 0; i < h.PerTick; i++ {
		pn := (h.Ticks*uint64(h.PerTick) + uint64(i)) % pages
		if err := ctx.Mem().WriteUint64(h.Base+pn*mem.PageSize, h.Ticks); err != nil {
			return kernel.Exit(0, 1)
		}
	}
	h.Ticks++
	return kernel.Sleep(100*sim.Microsecond, 2*sim.Millisecond)
}

func init() {
	cruz.RegisterProgram(&kvstore.Server{})
	cruz.RegisterProgram(&kvstore.Client{})
	cruz.RegisterProgram(&HotState{})
}

func main() {
	stopcopy := flag.Bool("stopcopy", false, "disable pre-copy rounds (stop-and-copy baseline)")
	flag.Parse()

	cl, err := cruz.New(cruz.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Database server plus its hot cache inside a pod on node 0.
	dbPod, err := cl.NewPod(0, "db")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dbPod.Spawn("kvd", kvstore.NewServer(0)); err != nil {
		log.Fatal(err)
	}
	if _, err := dbPod.Spawn("cache", &HotState{Bytes: 8 << 20, PerTick: 4}); err != nil {
		log.Fatal(err)
	}
	job, err := cl.DefineJob("db", "db")
	if err != nil {
		log.Fatal(err)
	}

	// Client as a plain process on node 1 — no pod, no checkpointing,
	// no awareness that the server will move.
	client := kvstore.NewClient(cruz.AddrPort{Addr: dbPod.IP(), Port: kvstore.DefaultPort})
	cl.Nodes[1].Kernel.Spawn("kvc", client, 0)

	cl.Run(300 * cruz.Millisecond)
	fmt.Printf("t=%-8v client completed %d verified ops against node 0\n",
		cl.Engine.Now(), client.Done)

	// --- live-migrate the server pod: node 0 -> node 2 --------------
	opts := cruz.MigrateOptions{
		Precopy: cruz.PrecopyConfig{MaxRounds: 10, DirtyThresholdPages: 32},
	}
	if *stopcopy {
		opts = cruz.MigrateOptions{} // freeze, copy everything, restore
		fmt.Printf("t=%-8v stop-and-copy migrating pod %q (IP %v) to node 2...\n",
			cl.Engine.Now(), dbPod.Name(), dbPod.IP())
	} else {
		fmt.Printf("t=%-8v live-migrating pod %q (IP %v) to node 2...\n",
			cl.Engine.Now(), dbPod.Name(), dbPod.IP())
	}
	res, err := cl.Migrate(job, "db", 2, opts)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res.RoundPages {
		label := fmt.Sprintf("pre-copy round %d (pod running)", i)
		if i == len(res.RoundPages)-1 {
			label = "residual round   (pod frozen) "
		}
		fmt.Printf("           %s: %5d pages %8d KB\n", label, p, p*mem.PageSize/1024)
	}
	fmt.Printf("t=%-8v pod live on node %d: downtime %v (total latency %v, %d KB streamed, %d msgs)\n",
		cl.Engine.Now(), cl.PodNode("db").Index, res.Downtime, res.Latency,
		res.BytesStreamed/1024, res.Messages)

	opsBefore := client.Done
	cl.Run(500 * cruz.Millisecond)
	server2 := cl.Pod("db").Process(1).Program().(*kvstore.Server)
	fmt.Printf("t=%-8v client completed %d more verified ops against node 2\n",
		cl.Engine.Now(), client.Done-opsBefore)
	fmt.Printf("           client fault: %q   server fault: %q\n", client.Fault, server2.Fault)
	fmt.Printf("           database still holds %d keys; client connection was never reset\n",
		len(server2.Table))
	if client.Fault != "" || client.Done == opsBefore {
		log.Fatal("migration disturbed the client")
	}
}
