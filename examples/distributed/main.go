// Distributed: coordinated checkpoint-restart of a parallel application.
//
// Four slm workers (the paper's semi-Lagrangian atmospheric model
// benchmark) run in pods on four nodes, exchanging halos over TCP every
// model step. The Cruz coordinator checkpoints the whole job with the
// Fig. 2 protocol — no channel flushing, in-flight packets simply dropped
// and recovered by TCP — then the cluster "crashes" and the job restarts
// from the checkpoint on the same nodes.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/sim"
)

func init() { cruz.RegisterProgram(&slm.Worker{}) }

func main() {
	const n = 4
	cl, err := cruz.New(cruz.Config{Nodes: n})
	if err != nil {
		log.Fatal(err)
	}

	// A scaled-down slm: 8 MB grids, ~25 ms steps.
	cfg := slm.Config{
		Workers:             n,
		Steps:               0,
		TotalComputePerStep: 80 * sim.Millisecond,
		StepOverhead:        5 * sim.Millisecond,
		HaloBytes:           32 << 10,
		GridBytes:           8 << 20,
		DirtyPagesPerStep:   64,
		Port:                9200,
	}

	var names []string
	var ips []cruz.Addr
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("slm-%d", i)
		pod, perr := cl.NewPod(i, name)
		if perr != nil {
			log.Fatal(perr)
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	var workers []*slm.Worker
	for i, name := range names {
		w := slm.NewWorker(cfg, i, ips[(i+1)%n])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
	}
	job, err := cl.DefineJob("weather", names...)
	if err != nil {
		log.Fatal(err)
	}

	cl.Run(500 * cruz.Millisecond)
	fmt.Printf("t=%-8v ring running: step %d on every worker\n", cl.Engine.Now(), workers[0].StepsDone)

	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-8v coordinated checkpoint: latency %v, coordination overhead %v, %d messages, %d MB total\n",
		cl.Engine.Now(), res.Latency, res.Overhead, res.Messages, res.TotalImageBytes>>20)
	stepAtCkpt := workers[0].StepsDone

	cl.Run(500 * cruz.Millisecond)
	fmt.Printf("t=%-8v progressed to step %d — now the whole cluster fails\n",
		cl.Engine.Now(), workers[0].StepsDone)
	for _, name := range names {
		cl.Pod(name).Destroy()
	}

	rres, err := cl.Restart(job, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-8v coordinated restart: latency %v, overhead %v\n",
		cl.Engine.Now(), rres.Latency, rres.Overhead)

	restored := cl.Pod(names[0]).Process(1).Program().(*slm.Worker)
	fmt.Printf("t=%-8v rolled back to step %d (checkpoint was at step %d)\n",
		cl.Engine.Now(), restored.StepsDone, stepAtCkpt)

	cl.Run(500 * cruz.Millisecond)
	for i, name := range names {
		w := cl.Pod(name).Process(1).Program().(*slm.Worker)
		if w.Fault != "" {
			log.Fatalf("worker %d fault after restart: %s", i, w.Fault)
		}
	}
	fmt.Printf("t=%-8v ring healthy at step %d — halo sequence verified on every worker\n",
		cl.Engine.Now(), cl.Pod(names[0]).Process(1).Program().(*slm.Worker).StepsDone)
}
