// Recovery: lose a machine and keep the job.
//
// Three slm workers run in pods on three nodes, exchanging halo data in
// a ring. Config{Replicas: 1} makes every committed checkpoint stream
// each pod's image to a peer node off the critical path, and
// Config{AutoRecover: true} puts the job under the coordinator's
// lease-based failure detector. When node 1 dies mid-run, no manual
// steps follow: the coordinator notices the missed heartbeats, picks a
// new home that already replicates the lost pod's image, and restarts
// the whole job from the last checkpoint — the example just waits and
// prints the MTTR phase breakdown.
//
// Run with: go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"cruz"
	"cruz/internal/apps/slm"
)

func init() {
	cruz.RegisterProgram(&slm.Worker{})
}

func main() {
	const nodes = 3
	cl, err := cruz.New(cruz.Config{
		Nodes:       nodes,
		Replicas:    1,    // each checkpoint keeps one copy on a peer node
		AutoRecover: true, // watch jobs and restart them on node failure
	})
	if err != nil {
		log.Fatal(err)
	}

	// One worker pod per node, ring-connected.
	cfg := slm.DefaultConfig(nodes)
	cfg.Steps = 0
	var names []string
	var ips []cruz.Addr
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("w%d", i)
		pod, err := cl.NewPod(i, name)
		if err != nil {
			log.Fatal(err)
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	for i, name := range names {
		w := slm.NewWorker(cfg, i, ips[(i+1)%nodes])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			log.Fatal(err)
		}
	}
	job, err := cl.DefineJob("ring", names...)
	if err != nil {
		log.Fatal(err)
	}

	worker := func(i int) *slm.Worker {
		return cl.Pod(names[i]).Process(1).Program().(*slm.Worker)
	}

	cl.Run(2 * cruz.Second)
	fmt.Printf("t=%-8v ring running at step %d\n", cl.Engine.Now(), worker(0).StepsDone)

	// Checkpoint, then let replication finish streaming the images to
	// their peers (it runs off the checkpoint's critical path).
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-8v checkpoint %d committed (latency %v)\n", cl.Engine.Now(), res.Seq, res.Latency)
	ok := cl.RunUntil(func() bool {
		for i := 0; i < nodes; i++ {
			if cl.Nodes[i].Agent.Stats.Replications < 1 {
				return false
			}
		}
		return true
	}, 10*cruz.Second)
	if !ok {
		log.Fatal("replication never completed")
	}
	fmt.Printf("t=%-8v every pod image replicated to a peer node\n", cl.Engine.Now())

	// Kill node 1: NIC down, kernel halted, pod and agent gone with it.
	stepAt := worker(0).StepsDone
	fmt.Printf("t=%-8v node 1 fails (step was %d)\n", cl.Engine.Now(), stepAt)
	cl.FailNode(1)

	// ...and just wait: detection, placement, and restart are automatic.
	if !cl.AwaitRecovery(1, 30*cruz.Second) {
		log.Fatal("automatic recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		log.Fatal(err)
	}
	rec := cl.Recoveries()[0]
	fmt.Printf("t=%-8v %s declared failed; job restarted from checkpoint %d\n",
		cl.Engine.Now(), rec.FailedNode, rec.Seq)
	for _, p := range rec.Pods {
		how := "no transfer needed, replica already there"
		if p.Transferred {
			how = "image fetched from " + p.From
		}
		fmt.Printf("           pod %s re-homed to %s (%s)\n", p.Pod, p.To, how)
	}
	fmt.Printf("           MTTR %v = detect %v + place %v + transfer %v + restart %v\n",
		rec.MTTR, rec.Detect, rec.Place, rec.Transfer, rec.Restart)

	// The ring computes again on the survivors.
	cl.Run(2 * cruz.Second)
	for i := 0; i < nodes; i++ {
		if f := worker(i).Fault; f != "" {
			log.Fatalf("worker %d fault after recovery: %s", i, f)
		}
	}
	fmt.Printf("t=%-8v ring healthy at step %d on %s — no manual recovery steps\n",
		cl.Engine.Now(), worker(0).StepsDone, cl.PodNode(names[1]).Kernel.Name())
}
