// Quickstart: checkpoint a running process and roll it back.
//
// This example builds a one-node cluster, runs a counter program inside a
// Zap pod, takes a coordinated checkpoint, lets the counter run further,
// crashes the pod, and restarts it from the checkpoint — demonstrating
// application-transparent rollback: the program is ordinary code with no
// checkpoint awareness.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cruz"
	"cruz/internal/kernel"
	"cruz/internal/sim"
)

// counter is the "application": it increments a value in memory forever.
// All its state is serializable, which is the only requirement programs
// must meet to be checkpointable.
type counter struct {
	Heap  uint64
	Count uint64
}

func (c *counter) Step(ctx *kernel.ProcContext) kernel.StepResult {
	m := ctx.Mem()
	if c.Heap == 0 {
		base, err := m.Alloc(4096, "heap")
		if err != nil {
			return kernel.Exit(0, 1)
		}
		c.Heap = base
	}
	c.Count++
	if err := m.WriteUint64(c.Heap, c.Count); err != nil {
		return kernel.Exit(0, 1)
	}
	return kernel.Sleep(10*sim.Microsecond, sim.Millisecond)
}

func init() { cruz.RegisterProgram(&counter{}) }

func main() {
	cl, err := cruz.New(cruz.Config{Nodes: 1})
	if err != nil {
		log.Fatal(err)
	}

	pod, err := cl.NewPod(0, "demo")
	if err != nil {
		log.Fatal(err)
	}
	prog := &counter{}
	if _, err := pod.Spawn("counter", prog); err != nil {
		log.Fatal(err)
	}
	job, err := cl.DefineJob("demo-job", "demo")
	if err != nil {
		log.Fatal(err)
	}

	cl.Run(100 * cruz.Millisecond)
	fmt.Printf("t=%-8v counter at %d\n", cl.Engine.Now(), prog.Count)

	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		log.Fatal(err)
	}
	atCkpt := prog.Count
	fmt.Printf("t=%-8v checkpoint %d taken in %v (image %d bytes)\n",
		cl.Engine.Now(), res.Seq, res.Latency, res.TotalImageBytes)

	cl.Run(100 * cruz.Millisecond)
	fmt.Printf("t=%-8v counter at %d — now crashing the pod\n", cl.Engine.Now(), prog.Count)
	cl.Pod("demo").Destroy()

	if _, err := cl.Restart(job, 0); err != nil {
		log.Fatal(err)
	}
	restored := cl.Pod("demo").Process(1).Program().(*counter)
	fmt.Printf("t=%-8v restarted: counter rolled back to %d (checkpointed at %d)\n",
		cl.Engine.Now(), restored.Count, atCkpt)

	cl.Run(100 * cruz.Millisecond)
	fmt.Printf("t=%-8v counter at %d — running again as if nothing happened\n",
		cl.Engine.Now(), restored.Count)
}
