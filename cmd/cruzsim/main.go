// Command cruzsim runs interactive-scale scenarios on the simulated
// cluster, printing an event timeline. It is the "kick the tires" tool;
// cmd/cruzbench regenerates the paper's evaluation.
//
// Usage:
//
//	cruzsim -scenario quickstart|migrate|failover|periodic [-nodes 4] [-group 0] [-seed 1]
//	        [-ec m+r] [-precopy] [-trace out.json] [-v]
//
// Scenarios:
//
//	quickstart  An slm job on every node takes one coordinated checkpoint
//	            and one coordinated restart — the smallest end-to-end run,
//	            and the reference input for -trace.
//	migrate     A live kvstore server pod moves between machines while an
//	            external client keeps issuing verified operations.
//	failover    An slm job loses a machine; lease-expiry detection and
//	            replicated checkpoints restart its pod automatically on a
//	            spare node, printing the MTTR phase breakdown. With
//	            -ec m+r (e.g. -ec 4+2) checkpoints are erasure-coded into
//	            m+r shard subsets instead of replicated, and the scenario
//	            kills TWO nodes — a shard holder and then a pod's host —
//	            forcing the new home to reconstruct the image from the m
//	            surviving shard subsets.
//	periodic    An slm job checkpoints every 2s using the Fig. 4 optimized
//	            protocol; prints per-checkpoint latencies and overheads.
//
// -precopy makes the periodic scenario stream each image over pre-copy
// rounds while the pods keep running, freezing them only for the
// residual dirty set — compare the "blocked" column against a run
// without the flag.
//
// -trace out.json enables the deterministic tracer and writes a Chrome
// trace-event file (load it in Perfetto / chrome://tracing); -v prints
// the trace as a human-readable timeline. Either flag also prints the
// checkpoint phase breakdown and a per-op critical-path summary when the
// scenario checkpoints or recovers. The flight recorder is always on:
// failure triggers (op aborts, lease expiry, recovery start) print their
// pre-trigger window summary even when tracing is off.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cruz"
	"cruz/internal/apps/kvstore"
	"cruz/internal/apps/slm"
	"cruz/internal/sim"
	"cruz/internal/trace"
	"cruz/internal/trace/critpath"
)

func init() {
	cruz.RegisterProgram(&slm.Worker{})
	cruz.RegisterProgram(&kvstore.Server{})
	cruz.RegisterProgram(&kvstore.Client{})
}

var (
	traceOut string
	verbose  bool
)

func main() {
	var (
		scenario = flag.String("scenario", "quickstart", "quickstart|migrate|failover|periodic")
		nodes    = flag.Int("nodes", 4, "application nodes")
		group    = flag.Int("group", 0, "coordination group size: 0 = flat fan-out, >1 = two-level tree (try ⌈√nodes⌉ for wide rings)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		ecStr    = flag.String("ec", "", "failover: erasure-code checkpoints m+r (e.g. 4+2) and kill two nodes")
		dedup    = flag.Bool("dedup", false, "periodic: store checkpoints content-addressed with the pipelined save path")
		precopy  = flag.Bool("precopy", false, "periodic: pre-copy rounds — stream live, freeze only the residual dirty set")
	)
	flag.StringVar(&traceOut, "trace", "", "write Chrome trace-event JSON to this file")
	flag.BoolVar(&verbose, "v", false, "print the trace as a timeline on stdout")
	flag.Parse()

	var err error
	switch *scenario {
	case "quickstart":
		err = quickstart(*nodes, *group, *seed)
	case "migrate":
		err = migrate(*seed)
	case "failover":
		if *ecStr != "" {
			var ec cruz.ECParams
			if ec, err = cruz.ParseECParams(*ecStr); err == nil {
				err = failoverEC(*nodes, *seed, ec)
			}
		} else {
			err = failover(*nodes, *seed)
		}
	case "periodic":
		err = periodic(*nodes, *seed, *dedup, *precopy)
	default:
		err = fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func stamp(cl *cruz.Cluster, format string, args ...any) {
	fmt.Printf("[%10v] %s\n", cl.Engine.Now(), fmt.Sprintf(format, args...))
}

// tracing reports whether any trace output was requested; scenarios pass
// it as Config.Trace.
func tracing() bool { return traceOut != "" || verbose }

// emitTrace renders the requested trace outputs for a finished scenario:
// the -v timeline, the -trace Chrome JSON file, the per-op critical-path
// summaries, and — whenever checkpoint phase spans were recorded — the
// phase breakdown table. Flight-recorder dumps print even without -trace
// or -v: the recorder is always on.
func emitTrace(cl *cruz.Cluster) error {
	tr := cl.Trace()
	if tr == nil {
		return flightReport(cl)
	}
	if n := tr.OpenSpans(); n != 0 {
		return fmt.Errorf("trace integrity: %d span(s) still open at end of run: %v", n, tr.OpenSpanNames())
	}
	events := tr.Events()
	if verbose {
		if err := tr.WriteTimeline(os.Stdout); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s (%d dropped)\n", len(events), traceOut, tr.Dropped())
	}
	if rep := trace.PhaseBreakdown(events); len(rep.Rows) > 0 {
		fmt.Println()
		fmt.Print(rep.Format())
	}
	if trees := critpath.BuildTrees(events); len(trees) > 0 {
		printed := false
		for _, t := range trees {
			rep := critpath.Analyze(t)
			if rep == nil {
				continue
			}
			if !printed {
				fmt.Println()
				printed = true
			}
			fmt.Println("critical path:", rep.Summary())
		}
	}
	return flightReport(cl)
}

// flightReport prints any flight-recorder dumps the run produced. The
// recorder runs even when tracing is off (FlightRecorder never returns
// nil), so aborted ops and lease expiries always leave evidence.
func flightReport(cl *cruz.Cluster) error {
	fr := cl.FlightRecorder()
	dumps := fr.FlightDumps()
	if len(dumps) == 0 {
		return nil
	}
	fmt.Println()
	fmt.Printf("flight recorder: %d dump(s)", len(dumps))
	if n := fr.FlightDumpsDropped(); n > 0 {
		fmt.Printf(" (%d older dumps discarded)", n)
	}
	fmt.Println()
	for _, d := range dumps {
		if verbose {
			fmt.Print(d.Format())
		} else {
			fmt.Printf("  @%.3fms trigger=%s reason=%s window=%.0fms events=%d  (rerun with -v for the full window)\n",
				d.At.Sub(0).Milliseconds(), d.Trigger, d.Reason,
				d.Window.Milliseconds(), len(d.Events))
		}
	}
	return nil
}

// quickstart runs the smallest full checkpoint-restart cycle: an slm
// ring with one worker pod per node, one coordinated checkpoint, a crash
// of every pod, and a coordinated restart from the image.
func quickstart(nodes, group int, seed int64) error {
	if nodes < 2 {
		nodes = 2
	}
	cl, err := cruz.New(cruz.Config{Nodes: nodes, Seed: seed, GroupSize: group, Trace: tracing()})
	if err != nil {
		return err
	}
	job, workers, err := slmJob(cl, nodes)
	if err != nil {
		return err
	}
	cl.Run(500 * cruz.Millisecond)
	stamp(cl, "slm ring of %d running at step %d", nodes, workers[0].StepsDone)

	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		return err
	}
	stamp(cl, "checkpoint %d committed (latency %v, %d msgs, %.1f MB images)",
		res.Seq, res.Latency, res.Messages, float64(res.TotalImageBytes)/(1<<20))
	cl.Run(200 * cruz.Millisecond)

	step := workers[0].StepsDone
	for i := 0; i < nodes; i++ {
		cl.Pod(fmt.Sprintf("slm-%d", i)).Destroy()
	}
	stamp(cl, "all pods destroyed (step was %d)", step)

	rres, err := cl.Restart(job, res.Seq)
	if err != nil {
		return err
	}
	stamp(cl, "restarted from checkpoint %d (latency %v)", res.Seq, rres.Latency)
	cl.Run(500 * cruz.Millisecond)
	for i := 0; i < nodes; i++ {
		w := cl.Pod(fmt.Sprintf("slm-%d", i)).Process(1).Program().(*slm.Worker)
		if w.Fault != "" {
			return fmt.Errorf("worker %d fault: %s", i, w.Fault)
		}
	}
	w := cl.Pod("slm-0").Process(1).Program().(*slm.Worker)
	stamp(cl, "ring healthy at step %d after restart", w.StepsDone)
	return emitTrace(cl)
}

func migrate(seed int64) error {
	cl, err := cruz.New(cruz.Config{Nodes: 3, Seed: seed, Trace: tracing()})
	if err != nil {
		return err
	}
	pod, err := cl.NewPod(0, "db")
	if err != nil {
		return err
	}
	server := kvstore.NewServer(0)
	pod.Spawn("kvd", server)
	job, err := cl.DefineJob("db", "db")
	if err != nil {
		return err
	}
	client := kvstore.NewClient(cruz.AddrPort{Addr: pod.IP(), Port: kvstore.DefaultPort})
	cl.Nodes[1].Kernel.Spawn("kvc", client, 0)

	cl.Run(250 * cruz.Millisecond)
	stamp(cl, "kvstore serving on node 0 (%v); client verified %d ops", pod.IP(), client.Done)

	opts := cruz.MigrateOptions{Precopy: cruz.PrecopyConfig{
		MaxRounds:           10,
		DirtyThresholdPages: 16,
	}}
	for hop, target := range []int{2, 0} {
		res, merr := cl.Migrate(job, "db", target, opts)
		if merr != nil {
			return merr
		}
		before := client.Done
		cl.Run(250 * cruz.Millisecond)
		stamp(cl, "hop %d: live-migrated to node %d — downtime %v, total %v, %d rounds %v, %d KB streamed",
			hop+1, target, res.Downtime, res.Latency, res.Rounds, res.RoundPages, res.BytesStreamed>>10)
		stamp(cl, "hop %d: client verified %d more ops on the same connection (fault=%q)",
			hop+1, client.Done-before, client.Fault)
		if client.Fault != "" {
			return fmt.Errorf("client disturbed: %s", client.Fault)
		}
		if client.Done == before {
			return fmt.Errorf("client made no progress after hop %d", hop+1)
		}
	}
	stamp(cl, "two live migrations; the client's TCP connection survived both")
	return emitTrace(cl)
}

func slmJob(cl *cruz.Cluster, n int) (*cruz.Job, []*slm.Worker, error) {
	cfg := slm.Config{
		Workers:             n,
		Steps:               0,
		TotalComputePerStep: 80 * sim.Millisecond,
		StepOverhead:        5 * sim.Millisecond,
		HaloBytes:           32 << 10,
		GridBytes:           8 << 20,
		DirtyPagesPerStep:   64,
		Port:                9200,
	}
	// Wide rings (-nodes 64 and beyond) shrink the per-worker grid so
	// the job's total footprint stays near the 4-node default and the
	// scenario finishes in seconds; the coordination behaviour under
	// test is unaffected.
	if n > 16 {
		cfg.GridBytes = (8 << 20) * 16 / uint64(n)
		if cfg.GridBytes < 256<<10 {
			cfg.GridBytes = 256 << 10
		}
	}
	var names []string
	var ips []cruz.Addr
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("slm-%d", i)
		pod, err := cl.NewPod(i%len(cl.Nodes), name)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	var workers []*slm.Worker
	for i, name := range names {
		w := slm.NewWorker(cfg, i, ips[(i+1)%n])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			return nil, nil, err
		}
		workers = append(workers, w)
	}
	job, err := cl.DefineJob("slm", names...)
	return job, workers, err
}

func failover(nodes int, seed int64) error {
	if nodes < 3 {
		nodes = 3
	}
	// Job on nodes 0..nodes-2; the last node is a standby spare. Every
	// checkpoint replicates to one peer and the coordinator watches the
	// job, so the node kill below needs no manual recovery steps at all.
	ringSize := nodes - 1
	cl, err := cruz.New(cruz.Config{
		Nodes: ringSize, Spares: 1, Replicas: 1, AutoRecover: true,
		Seed: seed, Trace: tracing(),
	})
	if err != nil {
		return err
	}
	job, workers, err := slmJob(cl, ringSize)
	if err != nil {
		return err
	}
	cl.Run(500 * cruz.Millisecond)
	stamp(cl, "slm ring of %d running at step %d; spare node %d standing by", ringSize, workers[0].StepsDone, nodes-1)

	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		return err
	}
	stamp(cl, "checkpoint %d committed (latency %v)", res.Seq, res.Latency)
	ok := cl.RunUntil(func() bool {
		for i := 0; i < ringSize; i++ {
			if cl.Nodes[i].Agent.Stats.Replications < 1 {
				return false
			}
		}
		return true
	}, 10*cruz.Second)
	if !ok {
		return fmt.Errorf("checkpoint replication never completed")
	}
	stamp(cl, "every pod image replicated to a peer node")
	cl.Run(300 * cruz.Millisecond)

	victim := ringSize - 1
	victimPod := fmt.Sprintf("slm-%d", victim)
	stamp(cl, "node %d fails (step was %d)", victim, workers[0].StepsDone)
	cl.FailNode(victim)

	if !cl.AwaitRecovery(1, 30*cruz.Second) {
		return fmt.Errorf("automatic recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		return err
	}
	rec := cl.Recoveries()[0]
	stamp(cl, "lease on %s expired; failure detected in %v", rec.FailedNode, rec.Detect)
	for _, p := range rec.Pods {
		how := "replica already local, no transfer"
		if p.Transferred {
			how = fmt.Sprintf("image fetched from %s", p.From)
		}
		stamp(cl, "pod %s re-homed to %s (%s)", p.Pod, p.To, how)
	}
	stamp(cl, "job restarted from checkpoint %d: MTTR %v = detect %v + place %v + transfer %v + restart %v",
		rec.Seq, rec.MTTR, rec.Detect, rec.Place, rec.Transfer, rec.Restart)

	cl.Run(500 * cruz.Millisecond)
	for i := 0; i < ringSize; i++ {
		ww := cl.Pod(fmt.Sprintf("slm-%d", i)).Process(1).Program().(*slm.Worker)
		if ww.Fault != "" {
			return fmt.Errorf("worker %d fault: %s", i, ww.Fault)
		}
	}
	w := cl.Pod(victimPod).Process(1).Program().(*slm.Worker)
	stamp(cl, "ring healthy at step %d after automatic failover", w.StepsDone)
	return emitTrace(cl)
}

// failoverEC is the failover scenario under erasure-coded durability:
// the ring's checkpoints stripe into m+r shard subsets instead of full
// replicas, and the scenario kills two nodes — first a shard holder,
// then a pod's own host — so no surviving node has a full image and the
// new home must pull m shard subsets and reconstruct.
func failoverEC(nodes int, seed int64, ec cruz.ECParams) error {
	shards := ec.M + ec.R
	// A 3-worker ring plus enough extra nodes that every pod has m+r
	// ring peers to hold shards, with one to spare as a restart target
	// after the double kill.
	ringSize := 3
	if nodes > ringSize+shards+1 {
		ringSize = nodes - shards - 1
	}
	total := ringSize + shards + 1
	cl, err := cruz.New(cruz.Config{
		Nodes: total, EC: ec, AutoRecover: true,
		Seed: seed, Trace: tracing(),
	})
	if err != nil {
		return err
	}
	job, workers, err := slmJob(cl, ringSize)
	if err != nil {
		return err
	}
	cl.Run(500 * cruz.Millisecond)
	stamp(cl, "slm ring of %d running at step %d on a %d-node cluster (EC %s)",
		ringSize, workers[0].StepsDone, total, ec)

	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{Dedup: true})
	if err != nil {
		return err
	}
	stamp(cl, "checkpoint %d committed (latency %v, %.1f MB images)",
		res.Seq, res.Latency, float64(res.TotalImageBytes)/(1<<20))
	ok := cl.RunUntil(func() bool {
		for i := 0; i < ringSize; i++ {
			if cl.Coordinator.KnownECShards(fmt.Sprintf("slm-%d", i), res.Seq) < shards {
				return false
			}
		}
		return true
	}, 30*cruz.Second)
	if !ok {
		return fmt.Errorf("shard distribution never completed")
	}
	var shardBytes int64
	for i := range cl.Nodes {
		shardBytes += cl.Nodes[i].Agent.Stats.ECShardBytes
	}
	stamp(cl, "every image striped %s across %d holders (%.1f MB shipped = %.2fx the images; k=%d replication would be %dx)",
		ec, shards, float64(shardBytes)/(1<<20),
		float64(shardBytes)/float64(res.TotalImageBytes), ec.R+1, ec.R+1)

	// First loss: a shard-holding node with no pods. Wait out its lease
	// so the coordinator has declared it dead before the second loss.
	holder := ringSize + 1
	stamp(cl, "node %d (a shard holder) fails — %d of %d shard positions left, still >= m=%d", holder, shards-1, shards, ec.M)
	cl.FailNode(holder)
	cl.Run(600 * cruz.Millisecond)

	victim := 1
	victimPod := fmt.Sprintf("slm-%d", victim)
	stamp(cl, "node %d (hosting %s) fails too — no surviving node holds a full image", victim, victimPod)
	cl.FailNode(victim)

	if !cl.AwaitRecovery(1, 30*cruz.Second) {
		return fmt.Errorf("automatic recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		return err
	}
	rec := cl.Recoveries()[0]
	stamp(cl, "lease on %s expired; failure detected in %v", rec.FailedNode, rec.Detect)
	for _, p := range rec.Pods {
		how := "replica already local, no transfer"
		if p.Reconstructed {
			how = fmt.Sprintf("reconstructed from %d shard subsets (first: %s)", ec.M, p.From)
		} else if p.Transferred {
			how = fmt.Sprintf("image fetched from %s", p.From)
		}
		stamp(cl, "pod %s re-homed to %s (%s)", p.Pod, p.To, how)
	}
	stamp(cl, "job restarted from checkpoint %d: MTTR %v = detect %v + place %v + transfer %v (decode %v of it) + restart %v",
		rec.Seq, rec.MTTR, rec.Detect, rec.Place, rec.Transfer, rec.Reconstruct, rec.Restart)

	cl.Run(500 * cruz.Millisecond)
	for i := 0; i < ringSize; i++ {
		ww := cl.Pod(fmt.Sprintf("slm-%d", i)).Process(1).Program().(*slm.Worker)
		if ww.Fault != "" {
			return fmt.Errorf("worker %d fault: %s", i, ww.Fault)
		}
	}
	w := cl.Pod(victimPod).Process(1).Program().(*slm.Worker)
	stamp(cl, "ring healthy at step %d after losing two nodes under %s coding", w.StepsDone, ec)
	return emitTrace(cl)
}

func periodic(nodes int, seed int64, dedup, precopy bool) error {
	cl, err := cruz.New(cruz.Config{Nodes: nodes, Seed: seed, Trace: tracing(), AutoCompact: 4})
	if err != nil {
		return err
	}
	job, workers, err := slmJob(cl, nodes)
	if err != nil {
		return err
	}
	cl.Run(500 * cruz.Millisecond)
	for k := 0; k < 5; k++ {
		opts := cruz.CheckpointOptions{Optimized: true}
		if dedup {
			opts.Dedup = true
			opts.Pipeline = true
		}
		if precopy {
			opts.Precopy = cruz.PrecopyConfig{MaxRounds: 3, DirtyThresholdPages: 16, MinRoundGain: 0.2}
		}
		res, cerr := cl.Checkpoint(job, opts)
		if cerr != nil {
			return cerr
		}
		stamp(cl, "checkpoint %d: latency %v  overhead %v  blocked %v  %d msgs  %.2f MB written  step %d",
			res.Seq, res.Latency, res.Overhead, res.MaxBlocked, res.Messages,
			float64(res.TotalImageBytes)/(1<<20), workers[0].StepsDone)
		cl.Run(2 * cruz.Second)
	}
	for i, w := range workers {
		if w.Fault != "" {
			return fmt.Errorf("worker %d fault: %s", i, w.Fault)
		}
	}
	mode := "optimized"
	if dedup {
		mode = "optimized dedup+pipeline"
	}
	if precopy {
		mode += " precopy"
	}
	stamp(cl, "5 %s checkpoints, application undisturbed", mode)
	return emitTrace(cl)
}
