// Command cruzbench regenerates every table and figure of the paper's
// evaluation (§6) from the simulated cluster, printing them as text
// tables and traces. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	cruzbench [-exp all|fig5|fig6|overhead|msgs|fig4|restart|incremental|dedup|precopy|migrate|recovery|ec|critpath|scale|phases|none]
//	          [-scale 1.0] [-ckpts 3] [-maxnodes 8] [-trace] [-json]
//	          [-checkjson FILE]
//
// scale 1.0 reproduces the paper's ≈100 MB pod images (slowest); smaller
// scales preserve every shape result and run faster.
//
// -trace runs the checkpoint-phase breakdown experiment (same as
// -exp phases): a traced cluster decomposes coordinated checkpoint
// latency into quiesce/drain/capture/write/commit. -traceout additionally
// writes its Chrome trace JSON. -exp critpath runs the traced
// kill-and-recover experiment and prints the cross-node span trees, the
// critical-path decomposition of the recovery MTTR and of the replicated
// checkpoint, and the lease-expiry flight-recorder dump. -json writes
// every selected experiment's distribution statistics
// (mean/stddev/percentiles) to BENCH_cruz.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cruz"
	"cruz/internal/exp"
	"cruz/internal/trace"
)

func main() {
	var (
		which     = flag.String("exp", "all", "experiment: all|fig5|fig6|overhead|msgs|fig4|restart|incremental|dedup|precopy|migrate|recovery|ec|critpath|scale|phases|none")
		scale     = flag.Float64("scale", 1.0, "workload scale (1.0 = paper's ~100 MB pod images)")
		ckpts     = flag.Int("ckpts", 3, "checkpoints per configuration (fig5)")
		maxNodes  = flag.Int("maxnodes", 8, "largest node count for sweeps")
		doTrace   = flag.Bool("trace", false, "run the checkpoint-phase breakdown (alias for -exp phases)")
		traceOut  = flag.String("traceout", "", "write the phases experiment's Chrome trace JSON to this file")
		jsonOut   = flag.Bool("json", false, "write distribution statistics to BENCH_cruz.json")
		jsonFile  = flag.String("jsonfile", "BENCH_cruz.json", "output path for -json")
		jsonCkpts = flag.Int("jsonckpts", 5, "checkpoints per configuration for -json distributions")
		checkJSON = flag.String("checkjson", "", "validate an existing -json output file and exit")
	)
	flag.Parse()

	if *checkJSON != "" {
		if err := validateJSON(*checkJSON); err != nil {
			fmt.Fprintf(os.Stderr, "cruzbench: checkjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "cruzbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig5", func() error { return fig5(*ckpts, *maxNodes, *scale) })
	run("fig6", fig6)
	run("overhead", overhead)
	run("msgs", func() error { return msgs(*maxNodes, *scale) })
	run("fig4", func() error { return fig4(*maxNodes, *scale) })
	run("restart", func() error { return restart(*maxNodes, *scale) })
	run("incremental", func() error { return incremental(*scale) })
	run("dedup", func() error { return dedup(*jsonCkpts, *scale) })
	run("precopy", func() error { return precopy(*ckpts, *scale) })
	run("migrate", func() error { return migrate(*ckpts, *scale) })
	run("recovery", func() error { return recovery(*scale) })
	run("ec", func() error { return ecRun(*scale) })
	run("critpath", func() error { return critpathRun(*scale) })
	run("scale", func() error { return scaling(*scale) })
	if *doTrace || *which == "phases" || *which == "all" {
		if err := phases(*maxNodes, *ckpts, *scale, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "cruzbench: phases: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := writeJSON(*jsonFile, *maxNodes, *jsonCkpts, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "cruzbench: json: %v\n", err)
			os.Exit(1)
		}
	}
}

// phases runs the traced checkpoint experiment and prints the per-phase
// latency decomposition (E1: where does checkpoint latency go?).
func phases(maxNodes, ckpts int, scale float64, traceOut string) error {
	n := 4
	if maxNodes < n {
		n = maxNodes
	}
	if n < 2 {
		n = 2
	}
	fmt.Println("== Checkpoint phase breakdown (traced) ==")
	fmt.Printf("   (%d nodes, %d checkpoints, scale %.2f)\n\n", n, ckpts, scale)
	res, err := exp.Phases(n, ckpts, scale)
	if err != nil {
		return err
	}
	if res.Dropped > 0 {
		return fmt.Errorf("trace ring overflowed (%d events dropped): the phase report is truncated; raise the trace capacity", res.Dropped)
	}
	fmt.Print(res.Report.Format())
	fmt.Println("\n-- with content-addressed pipeline (dedup+pipeline, incremental, auto-compact) --")
	dres, err := exp.PhasesDedup(n, ckpts, scale)
	if err != nil {
		return err
	}
	if dres.Dropped > 0 {
		return fmt.Errorf("trace ring overflowed (%d events dropped): the dedup phase report is truncated; raise the trace capacity", dres.Dropped)
	}
	fmt.Print(dres.Report.Format())
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, res.Events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d trace events to %s\n", len(res.Events), traceOut)
	}
	fmt.Println()
	return nil
}

// writeJSON collects distribution statistics for the headline
// experiments and writes them as indented JSON.
func writeJSON(path string, maxNodes, ckpts int, scale float64) error {
	counts := []int{2}
	if maxNodes >= 4 {
		counts = append(counts, 4)
	}
	if maxNodes >= 8 {
		counts = append(counts, 8)
	}
	rep, err := exp.JSONBench(counts, ckpts, scale)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d experiment distributions to %s\n", len(rep.Experiments), path)
	return nil
}

func sweep(maxNodes int) []int {
	var out []int
	for n := 2; n <= maxNodes; n++ {
		out = append(out, n)
	}
	return out
}

func fig5(ckpts, maxNodes int, scale float64) error {
	fmt.Println("== Figure 5: coordinated checkpoint of slm ==")
	fmt.Printf("   (%d checkpoints per config, 8s interval, scale %.2f)\n\n", ckpts, scale)
	rows, err := exp.Fig5(sweep(maxNodes), ckpts, 8*cruz.Second, scale)
	if err != nil {
		return err
	}
	fmt.Println("-- Fig 5(a): total checkpoint latency --")
	fmt.Println("nodes   latency(ms)   stddev   local(ms)   image/pod(MB)")
	for _, r := range rows {
		fmt.Printf("%5d   %11.1f   %6.1f   %9.1f   %13.1f\n",
			r.Nodes, r.LatencyMeanMs, r.LatencyStdMs, r.LocalMeanMs, r.PerPodImageMB)
	}
	fmt.Println("\n-- Fig 5(b): coordination overhead --")
	fmt.Println("nodes   overhead(µs)   stddev")
	for _, r := range rows {
		fmt.Printf("%5d   %12.1f   %6.1f\n", r.Nodes, r.OverheadMeanUs, r.OverheadStdUs)
	}
	fmt.Println()
	return nil
}

func fig6() error {
	fmt.Println("== Figure 6: TCP stream across a checkpoint ==")
	res, err := exp.Fig6()
	if err != nil {
		return err
	}
	fmt.Printf("steady rate:          %7.0f Mb/s\n", res.SteadyMbps)
	fmt.Printf("checkpoint latency:   %7.1f ms\n", res.CheckpointMs)
	fmt.Printf("zero-rate span:       %7.1f ms\n", res.ZeroMs)
	fmt.Printf("recovery (90%% rate): %7.1f ms after checkpoint start\n", res.RecoveryMs)
	fmt.Printf("  (TCP retransmission gap after completion: %.1f ms)\n\n", res.RecoveryMs-res.CheckpointMs)
	fmt.Println(res.Series.Format())
	return nil
}

func overhead() error {
	fmt.Println("== §6 runtime virtualization overhead ==")
	res, err := exp.RuntimeOverhead()
	if err != nil {
		return err
	}
	fmt.Printf("native run:  %10.1f ms\n", res.NativeMs)
	fmt.Printf("in-pod run:  %10.1f ms\n", res.PodMs)
	fmt.Printf("overhead:    %10.4f %%  (paper bound: <0.5%%)\n\n", res.OverheadPct)
	return nil
}

func msgs(maxNodes int, scale float64) error {
	fmt.Println("== §5.2 message complexity: Cruz O(N) vs flushing O(N²) ==")
	rows, err := exp.MessageComplexity(sweep(maxNodes), scale)
	if err != nil {
		return err
	}
	fmt.Println("nodes   cruz msgs   flush coord   flush markers   cruz lat(ms)   flush lat(ms)   drain(ms)")
	for _, r := range rows {
		fmt.Printf("%5d   %9d   %11d   %13d   %12.1f   %13.1f   %9.2f\n",
			r.Nodes, r.CruzMsgs, r.FlushCoordMsgs, r.FlushMarkerMsgs,
			r.CruzLatencyMs, r.FlushLatencyMs, r.FlushDrainMs)
	}
	fmt.Println()
	return nil
}

func fig4(maxNodes int, scale float64) error {
	fmt.Println("== Fig 4 / §5.2 optimizations: application-visible freeze ==")
	nodes := []int{2, 4}
	if maxNodes >= 8 {
		nodes = append(nodes, 8)
	}
	rows, err := exp.Fig4Compare(nodes, scale)
	if err != nil {
		return err
	}
	fmt.Println("   (one straggler pod with a 2x image; freeze = how long pods stay stopped)")
	fmt.Println("nodes   variant           slowest-pod freeze(ms)   fastest-pod freeze(ms)   latency(ms)")
	for _, r := range rows {
		for _, v := range r.Variants {
			fmt.Printf("%5d   %-16s  %22.1f   %22.1f   %11.1f\n",
				r.Nodes, v.Name, v.MaxBlockedMs, v.MinBlockedMs, v.LatencyMs)
		}
	}
	fmt.Println()
	return nil
}

func restart(maxNodes int, scale float64) error {
	fmt.Println("== Coordinated restart (paper: 'similar to Fig. 5') ==")
	rows, err := exp.RestartLatency(sweep(maxNodes), 2, scale)
	if err != nil {
		return err
	}
	fmt.Println("nodes   latency(ms)   stddev   overhead(µs)   local(ms)")
	for _, r := range rows {
		fmt.Printf("%5d   %11.1f   %6.1f   %12.1f   %9.1f\n",
			r.Nodes, r.LatencyMeanMs, r.LatencyStdMs, r.OverheadMeanUs, r.LocalMeanMs)
	}
	fmt.Println()
	return nil
}

func incremental(scale float64) error {
	fmt.Println("== Ablation: incremental checkpointing ==")
	rows, err := exp.IncrementalAblation(scale)
	if err != nil {
		return err
	}
	fmt.Println("kind          image(MB)   latency(ms)")
	for _, r := range rows {
		fmt.Printf("%-12s  %9.1f   %11.1f\n", r.Kind, r.ImageMB, r.LatencyMs)
	}
	fmt.Println()
	return nil
}

func dedup(ckpts int, scale float64) error {
	fmt.Println("== Ablation: content-addressed (dedup) checkpoint store ==")
	fmt.Printf("   (4 nodes, %d checkpoints per variant, scale %.2f)\n\n", ckpts, scale)
	rows, err := exp.DedupAblation(4, ckpts, scale)
	if err != nil {
		return err
	}
	fmt.Println("variant          first(ms)   steady(ms)   first(MB)   steady(MB)   restore(ms)")
	for _, r := range rows {
		fmt.Printf("%-15s  %9.1f   %10.1f   %9.1f   %10.2f   %11.1f\n",
			r.Variant, r.FirstLatencyMs, r.SteadyLatencyMs, r.FirstMB, r.SteadyMB, r.RestoreMs)
	}
	fmt.Println("\n-- chain compaction: restore after 1 full + 8 incremental dedup checkpoints --")
	crows, err := exp.CompactionAblation(4, 8, scale)
	if err != nil {
		return err
	}
	fmt.Println("scenario        ckpts   restore(ms)   store chunks   freed(MB)")
	for _, r := range crows {
		fmt.Printf("%-14s  %5d   %11.1f   %12d   %9.2f\n",
			r.Scenario, r.Checkpoints, r.RestoreMs, r.StoreChunks, r.FreedMB)
	}
	fmt.Println()
	return nil
}

// precopy runs ablation A7: checkpoint downtime versus application write
// rate for stop-and-copy, the pipelined save, and pre-copy rounds.
func precopy(ckpts int, scale float64) error {
	fmt.Println("== Ablation A7: pre-copy rounds — downtime vs write rate ==")
	fmt.Printf("   (4 nodes, %d checkpoints per cell, scale %.2f; downtime = slowest pod's freeze)\n\n", ckpts, scale)
	rows, err := exp.PrecopyAblation(4, ckpts, scale, []float64{0.5, 1, 2, 4})
	if err != nil {
		return err
	}
	fmt.Println("dirty pages/step   variant          downtime(ms)   latency(ms)   frozen-copy(MB)")
	for _, r := range rows {
		fmt.Printf("%16d   %-14s   %12.1f   %11.1f   %15.2f\n",
			r.DirtyPagesPerStep, r.Variant, r.DowntimeMs, r.LatencyMs, r.FrozenMB)
	}
	fmt.Println()
	return nil
}

// migrate runs ablation A10: live pod migration (pre-copy streaming +
// address takeover) against the stop-and-copy baseline.
func migrate(migs int, scale float64) error {
	fmt.Println("== Ablation A10: live migration — downtime vs stop-and-copy ==")
	fmt.Printf("   (4-worker ring + 1 spare node, %d migrations per variant, scale %.2f)\n\n", migs, scale)
	rows, err := exp.MigrateAblation(4, migs, scale)
	if err != nil {
		return err
	}
	fmt.Println("variant          migrations   downtime(ms)   latency(ms)   rounds   streamed(MB)")
	for _, r := range rows {
		fmt.Printf("%-15s  %10d   %12.1f   %11.1f   %6.1f   %12.2f\n",
			r.Variant, r.Migrations, r.DowntimeMs, r.LatencyMs, r.Rounds, r.StreamedMB)
	}
	fmt.Println("\n(downtime is the application-visible gap: freeze to resumed-on-destination.")
	fmt.Println(" Live migration streams pre-copy rounds while the pod runs; only the")
	fmt.Println(" residual dirty set transfers under freeze.)")
	fmt.Println()
	return nil
}

// recovery runs the automatic failure-recovery experiment: kill a node
// of a replicated job and report the MTTR phase breakdown.
func recovery(scale float64) error {
	fmt.Println("== Automatic failure recovery (replicated checkpoints) ==")
	fmt.Printf("   (4 nodes, kill one mid-run, scale %.2f)\n\n", scale)
	rows, err := exp.Recovery(4, scale, []exp.RecoveryConfig{
		{Replicas: 1, Spares: 0},
		{Replicas: 1, Spares: 1},
		{Replicas: 3, Spares: 1},
	})
	if err != nil {
		return err
	}
	fmt.Println("replicas   spares   detect(ms)   place(ms)   transfer(ms)   restart(ms)   MTTR(ms)   moved(MB)   target")
	for _, r := range rows {
		fmt.Printf("%8d   %6d   %10.1f   %9.2f   %12.1f   %11.1f   %8.1f   %9.2f   %s\n",
			r.Replicas, r.Spares, r.DetectMs, r.PlaceMs, r.TransferMs, r.RestartMs, r.MTTRMs, r.TransferMB, r.Target)
	}
	fmt.Println()
	return nil
}

// ecRun prints the A11 erasure-coded storage-tier ablation: the same
// workload under 3-way replication and under 4+2 striping, at paper
// scale (8 nodes) and wide (64 nodes, light workload).
func ecRun(scale float64) error {
	fmt.Println("== Ablation A11: erasure-coded checkpoint storage — 4+2 vs 3-way replication ==")
	fmt.Printf("   (slm ring, dedup checkpoints, kill one node mid-run, scale %.2f)\n\n", scale)
	rows, err := exp.ECAblation([]int{8, 64}, scale)
	if err != nil {
		return err
	}
	fmt.Println("nodes   scheme    image(MB)   wire(MB)   steady(MB)   overhead   detect(ms)   transfer(ms)   reconstruct(ms)   restart(ms)   MTTR(ms)")
	for _, r := range rows {
		fmt.Printf("%5d   %-7s   %9.1f   %8.1f   %10.2f   %7.2fx   %10.1f   %12.1f   %15.1f   %11.1f   %8.1f\n",
			r.Nodes, r.Scheme, r.ImageMB, r.WireMB, r.SteadyMB, r.Overhead,
			r.DetectMs, r.TransferMs, r.ReconstructMs, r.RestartMs, r.MTTRMs)
	}
	fmt.Println("\n(wire == disk here: the delta protocol only ships chunks the holder is")
	fmt.Println(" missing, so shipped bytes are exactly what lands in peer stores.")
	fmt.Println(" Replication k=3 pays 3x the image per checkpoint; EC 4+2 pays 1.5x and")
	fmt.Println(" still survives any two node losses — at the cost of the reconstruct")
	fmt.Println(" window inside the recovery transfer phase.)")
	fmt.Println()
	return nil
}

// critpathRun prints the causal span trees, critical-path tables, and
// lease-expiry flight dump of the traced kill-and-recover run.
func critpathRun(scale float64) error {
	fmt.Println("== Critical-path analysis: traced kill-and-recover ==")
	fmt.Printf("   (4 nodes + 1 spare, 1 replica, kill node 1, scale %.2f)\n\n", scale)
	cp, err := exp.CritPath(scale)
	if err != nil {
		return err
	}
	fmt.Println("-- recovery span tree (coordinator + agents) --")
	fmt.Print(cp.RecoveryTree.Format())
	fmt.Println("\n-- recovery critical path --")
	fmt.Println(cp.Recovery.Summary())
	fmt.Print(cp.Recovery.Format())
	fmt.Printf("(recovery result MTTR %.3f ms; phase sum agrees within 1%%)\n", cp.MTTRMs)
	fmt.Println("\n-- replicated checkpoint critical path --")
	fmt.Println(cp.Checkpoint.Summary())
	fmt.Print(cp.Checkpoint.Format())
	fmt.Println("\n-- flight recorder --")
	fmt.Printf("lease-expiry dump: @%v trigger=%s reason=%s window=%v events=%d\n\n",
		cp.Dump.At, cp.Dump.Trigger, cp.Dump.Reason, cp.Dump.Window, len(cp.Dump.Events))
	return nil
}

// scaling prints the A9 scaling ablation: flat vs hierarchical (tree)
// coordination at 8, 64, and 256 pods — root message counts, commit
// latency, and the engine's wall-clock event throughput.
func scaling(scale float64) error {
	fmt.Println("== Ablation A9: coordination scaling — flat vs two-level tree ==")
	fmt.Printf("   (light slm ring, one checkpoint per cell, scale %.2f)\n\n", scale)
	rows, err := exp.Scaling(exp.ScalingNodeCounts, scale)
	if err != nil {
		return err
	}
	fmt.Println("nodes   mode   group   root msgs   latency(ms)   kevents/s   wall(ms)")
	for _, r := range rows {
		mode := "flat"
		if r.Tree() {
			mode = "tree"
		}
		fmt.Printf("%5d   %-4s   %5d   %9d   %11.1f   %9.0f   %8.0f\n",
			r.Nodes, mode, r.GroupSize, r.Messages, r.LatencyMs, r.EventsPerSec/1000, r.WallMs)
	}
	fmt.Println("\n(flat root messages grow O(N); tree grows O(N/⌈√N⌉) = O(√N).")
	fmt.Println(" Commit/abort decisions are identical in both modes.)")
	fmt.Println()
	return nil
}

// validateJSON parses a -json output file and verifies it is a
// well-formed benchmark report (make bench's gate), including the
// critical-path keys the critpath experiment contributes.
func validateJSON(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep exp.BenchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: invalid JSON: %w", path, err)
	}
	if len(rep.Experiments) == 0 {
		return fmt.Errorf("%s: no experiment distributions", path)
	}
	for _, key := range []string{
		"critpath_recovery_n4/total_ms",
		"critpath_recovery_n4/detect_ms",
		"critpath_recovery_n4/restart_ms",
		"critpath_checkpoint_n4/total_ms",
		"migrate_n4/downtime_ms",
		"migrate_n4/rounds",
		"migrate_n4/bytes_streamed",
		"migrate_n4/stopcopy_downtime_ms",
		"ec_n8_repl_k3/wire_mb",
		"ec_n8_repl_k3/mttr_ms",
		"ec_n8_ec_4p2/wire_mb",
		"ec_n8_ec_4p2/steady_mb",
		"ec_n8_ec_4p2/reconstruct_ms",
		"ec_n8_ec_4p2/mttr_ms",
		"scale_n256_flat/coord_messages",
		"scale_n256_tree/coord_messages",
		"engine_n256_tree/kevents_per_wall_sec",
	} {
		if _, ok := rep.Experiments[key]; !ok {
			return fmt.Errorf("%s: missing required key %s", path, key)
		}
	}
	fmt.Printf("%s: ok (%d experiment distributions, scale %.2f)\n",
		path, len(rep.Experiments), rep.Scale)
	return nil
}
