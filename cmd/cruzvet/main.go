// Command cruzvet runs the Cruz determinism-and-invariant analyzer
// suite (internal/analysis) over the tree.
//
// Usage:
//
//	cruzvet [-stats] [-run name,name] [packages]
//
// With no package arguments it analyzes ./... . The exit status is 1
// if any unsuppressed finding (or malformed //cruzvet:allow
// directive) is reported, so `make check` and CI can gate on it.
//
// Findings are silenced with a //cruzvet:allow <analyzer> <reason>
// comment on the offending line or the line above; -stats reports how
// many findings each analyzer produced and how many were suppressed,
// and lists stale (unused) allow directives.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cruz/internal/analysis"
)

func main() {
	var (
		stats   = flag.Bool("stats", false, "print per-analyzer finding/suppression counts and stale allow directives")
		run     = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list available analyzers and exit")
		simside = flag.String("simside", "", "comma-separated import-path prefixes to treat as sim-side, in addition to the defaults")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cruzvet [-stats] [-run name,name] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := []*analysis.Analyzer{
		analysis.NoDeterminism,
		analysis.MapOrder,
		analysis.SpanLeak,
		analysis.LockOrder,
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "cruzvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cruzvet: %v\n", err)
		os.Exit(2)
	}

	cfg := analysis.Config{}
	if *simside != "" {
		cfg.SimSide = append(append([]string(nil), analysis.DefaultSimSide...), strings.Split(*simside, ",")...)
	}
	suite := analysis.NewSuite(cfg, selected...)
	res := suite.Run(pkgs)

	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if *stats {
		fmt.Printf("cruzvet: %d packages, %d findings, %d suppressed\n",
			res.Packages, len(res.Diags), len(res.Suppressed))
		for _, st := range suite.Stats(res) {
			fmt.Printf("  %-16s %d findings, %d suppressed\n", st.Analyzer, st.Findings, st.Suppressed)
		}
		for _, sup := range res.Suppressed {
			fmt.Printf("  allowed %s: [%s] %s (reason: %s)\n", sup.Pos, sup.Analyzer, sup.Message, sup.Reason)
		}
		for _, u := range res.Unused {
			fmt.Printf("  stale //cruzvet:allow %s at %s (suppresses nothing)\n", u.Analyzer, u.Pos)
		}
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}
