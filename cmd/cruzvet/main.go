// Command cruzvet runs the Cruz determinism-and-invariant analyzer
// suite (internal/analysis) over the tree.
//
// Usage:
//
//	cruzvet [-stats] [-strict-allow] [-run name,name] [packages]
//
// With no package arguments it analyzes ./... . The exit status is 1
// if any unsuppressed finding (or malformed //cruzvet:allow
// directive) is reported, so `make check` and CI can gate on it.
//
// Findings are silenced with a //cruzvet:allow <analyzer> <reason>
// comment on the offending line or the line above; -stats reports how
// many findings each analyzer produced, how many were suppressed, and
// per-analyzer wall time, and lists stale (unused) allow directives.
// With -strict-allow a stale directive is itself a gating failure:
// exceptions must be deleted the moment the code they excused is gone.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cruz/internal/analysis"
)

func main() {
	var (
		stats       = flag.Bool("stats", false, "print per-analyzer finding/suppression counts, timings, and stale allow directives")
		strictAllow = flag.Bool("strict-allow", false, "exit 1 if any //cruzvet:allow directive suppresses nothing")
		run         = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list        = flag.Bool("list", false, "list available analyzers and exit")
		simside     = flag.String("simside", "", "comma-separated import-path prefixes to treat as sim-side, in addition to the defaults")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cruzvet [-stats] [-strict-allow] [-run name,name] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := []*analysis.Analyzer{
		analysis.NoDeterminism,
		analysis.MapOrder,
		analysis.SpanLeak,
		analysis.LockOrder,
		analysis.PoolLeak,
		analysis.OpLifecycle,
		analysis.CtxProp,
		analysis.ErrDrop,
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "cruzvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadStart := time.Now() //cruzvet:allow nodeterminism analyzer wall-time profiling; the vet driver never runs inside the simulation
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cruzvet: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart) //cruzvet:allow nodeterminism analyzer wall-time profiling; the vet driver never runs inside the simulation

	cfg := analysis.Config{}
	if *simside != "" {
		cfg.SimSide = append(append([]string(nil), analysis.DefaultSimSide...), strings.Split(*simside, ",")...)
	}
	suite := analysis.NewSuite(cfg, selected...)
	res := suite.Run(pkgs)

	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if *stats {
		fmt.Printf("cruzvet: %d packages, %d findings, %d suppressed\n",
			res.Packages, len(res.Diags), len(res.Suppressed))
		timings := make(map[string]time.Duration)
		for _, tm := range suite.Timings() {
			timings[tm.Analyzer] = tm.Duration
		}
		for _, st := range suite.Stats(res) {
			fmt.Printf("  %-16s %d findings, %d suppressed (%s)\n",
				st.Analyzer, st.Findings, st.Suppressed, timings[st.Analyzer].Round(time.Millisecond))
		}
		fmt.Printf("  load+typecheck   %s\n", loadTime.Round(time.Millisecond))
		for _, sup := range res.Suppressed {
			fmt.Printf("  allowed %s: [%s] %s (reason: %s)\n", sup.Pos, sup.Analyzer, sup.Message, sup.Reason)
		}
		for _, u := range res.Unused {
			fmt.Printf("  stale //cruzvet:allow %s at %s (suppresses nothing)\n", u.Analyzer, u.Pos)
		}
	}
	if *strictAllow && len(res.Unused) > 0 {
		for _, u := range res.Unused {
			fmt.Printf("%s: [cruzvet] stale //cruzvet:allow %s suppresses nothing: delete it\n", u.Pos, u.Analyzer)
		}
		os.Exit(1)
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}
