package cruz_test

import (
	"errors"
	"fmt"
	"testing"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/core"
)

// replicatedCluster builds an auto-recovering ring cluster and takes one
// fully replicated checkpoint.
func replicatedCluster(t *testing.T, cfg cruz.Config, n int) (*cruz.Cluster, []string, *cruz.Job) {
	t.Helper()
	cl, err := cruz.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRing(t, cl, n)
	cl.Run(200 * cruz.Millisecond)
	if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	// Replication runs off the critical path; wait for every agent to
	// finish streaming its pod's image before pulling the plug.
	ok := cl.RunUntil(func() bool {
		for i := 0; i < n; i++ {
			if cl.Nodes[i].Agent.Stats.Replications < uint64(cfg.Replicas) {
				return false
			}
		}
		return true
	}, 10*cruz.Second)
	if !ok {
		t.Fatal("replication never completed")
	}
	return cl, names, job
}

// runRecoveryScenario is one full kill-and-recover pass; the returned
// summary string captures everything determinism should preserve.
func runRecoveryScenario(t *testing.T, seed int64) string {
	t.Helper()
	cl, names, _ := replicatedCluster(t, cruz.Config{
		Nodes: 3, Seed: seed, Replicas: 1, AutoRecover: true,
	}, 3)
	stepsAt := cl.Pod(names[0]).Process(1).Program().(*slm.Worker).StepsDone

	cl.FailNode(1)
	if !cl.AwaitRecovery(1, 10*cruz.Second) {
		t.Fatal("automatic recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	res := cl.Recoveries()[0]
	if res.FailedNode != "node1" || res.Seq != 1 {
		t.Fatalf("recovered from %s seq %d, want node1 seq 1", res.FailedNode, res.Seq)
	}
	if res.Detect <= 0 || res.Place <= 0 || res.Restart <= 0 || res.MTTR <= 0 {
		t.Fatalf("phases not reported: %+v", res)
	}
	if res.MTTR != res.Detect+res.Place+res.Transfer+res.Restart {
		t.Fatalf("MTTR %v is not the sum of its phases", res.MTTR)
	}
	// The next ring peer already replicates the failed pod's image, so
	// recovery needs no image transfer at all.
	if res.Transfer != 0 || res.TransferBytes != 0 {
		t.Fatalf("expected zero-transfer recovery, got %v / %d bytes", res.Transfer, res.TransferBytes)
	}
	if len(res.Pods) != 1 || res.Pods[0].Pod != names[1] || res.Pods[0].Transferred {
		t.Fatalf("recovered pods: %+v", res.Pods)
	}
	// The pod was re-homed off the failed node with no manual
	// CopyImages/MovePod.
	if n := cl.PodNode(names[1]); n == cl.Nodes[1] {
		t.Fatal("failed pod still assigned to the dead node")
	}

	// The whole job rolled back to seq 1 and must make progress again.
	cl.Run(500 * cruz.Millisecond)
	for _, name := range names {
		w := cl.Pod(name).Process(1).Program().(*slm.Worker)
		if w.Fault != "" {
			t.Fatalf("pod %s fault after recovery: %q", name, w.Fault)
		}
		if w.StepsDone <= stepsAt {
			t.Fatalf("pod %s stuck after recovery: steps %d <= %d", name, w.StepsDone, stepsAt)
		}
	}
	// No leaked operations anywhere that survived.
	if n := cl.Coordinator.OpenOps(); n != 0 {
		t.Fatalf("coordinator leaked %d ops", n)
	}
	for i, node := range cl.Nodes {
		if i == 1 {
			continue // the dead node's agent is unreachable, not cleaned
		}
		if n := node.Agent.OpenOps(); n != 0 {
			t.Fatalf("agent %d leaked %d ops", i, n)
		}
	}
	return fmt.Sprintf("mttr=%v detect=%v place=%v transfer=%v restart=%v to=%s",
		res.MTTR, res.Detect, res.Place, res.Transfer, res.Restart, res.Pods[0].To)
}

// TestAutoRecoveryAfterNodeFailure is the end-to-end tentpole check:
// kill a node mid-run and the job resumes on survivors automatically,
// identically for the same seed, across two different seeds.
func TestAutoRecoveryAfterNodeFailure(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		a := runRecoveryScenario(t, seed)
		b := runRecoveryScenario(t, seed)
		if a != b {
			t.Fatalf("seed %d diverged:\n  %s\n  %s", seed, a, b)
		}
	}
}

// TestFailNodeMidCheckpointAborts: a node failure during the two-phase
// exchange aborts the checkpoint cleanly — survivors resume, no ops leak,
// and after automatic recovery the next checkpoint succeeds.
func TestFailNodeMidCheckpointAborts(t *testing.T) {
	cl, names, job := replicatedCluster(t, cruz.Config{
		Nodes: 3, Seed: 11, Replicas: 1, AutoRecover: true,
	}, 3)

	var cpErr error
	cpDone := false
	cl.Coordinator.Checkpoint(job, cruz.CheckpointOptions{}, func(_ *cruz.CheckpointResult, err error) {
		cpErr, cpDone = err, true
	})
	cl.FailNode(1)
	if !cl.RunUntil(func() bool { return cpDone }, 10*cruz.Second) {
		t.Fatal("in-flight checkpoint never resolved after node failure")
	}
	if !errors.Is(cpErr, core.ErrNodeFailed) {
		t.Fatalf("checkpoint error = %v, want ErrNodeFailed", cpErr)
	}
	if !cl.AwaitRecovery(1, 10*cruz.Second) {
		t.Fatal("recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	// The aborted attempt left nothing behind on any survivor.
	if n := cl.Coordinator.OpenOps(); n != 0 {
		t.Fatalf("coordinator leaked %d ops", n)
	}
	for _, i := range []int{0, 2} {
		if n := cl.Nodes[i].Agent.OpenOps(); n != 0 {
			t.Fatalf("agent %d leaked %d ops", i, n)
		}
	}
	cl.Run(100 * cruz.Millisecond)
	// The next checkpoint of the re-homed job succeeds.
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	if res.Seq <= 1 {
		t.Fatalf("post-recovery checkpoint seq = %d", res.Seq)
	}
	cl.Run(200 * cruz.Millisecond)
	for _, name := range names {
		w := cl.Pod(name).Process(1).Program().(*slm.Worker)
		if w.Fault != "" {
			t.Fatalf("pod %s fault: %q", name, w.Fault)
		}
	}
}

// TestRecoveryDeterministicTrace: two identical recovery runs produce
// identical virtual-time traces, event for event.
func TestRecoveryDeterministicTrace(t *testing.T) {
	run := func() []string {
		cl, names, _ := replicatedCluster(t, cruz.Config{
			Nodes: 3, Seed: 17, Replicas: 1, AutoRecover: true, Trace: true,
		}, 3)
		_ = names
		cl.FailNode(2)
		if !cl.AwaitRecovery(1, 10*cruz.Second) {
			t.Fatal("recovery never completed")
		}
		cl.Run(100 * cruz.Millisecond)
		evs := cl.Trace().Events()
		out := make([]string, len(evs))
		for i, e := range evs {
			out[i] = fmt.Sprintf("%d %d %s %s %s", int64(e.At), e.Kind, e.Node, e.Cat, e.Name)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at event %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}
